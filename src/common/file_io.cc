#include "common/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace quick {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) {
    return Status::NotFound(op + " " + path + ": " + std::strerror(err));
  }
  return Status::Internal(op + " " + path + ": " + std::strerror(err));
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

AppendFile::~AppendFile() { (void)Close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    (void)Close();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

Status AppendFile::Open(const std::string& path) {
  QUICK_RETURN_IF_ERROR(Close());
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  fd_ = fd;
  size_ = end;
  path_ = path;
  return Status::OK();
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("append on closed file");
  QUICK_RETURN_IF_ERROR(WriteAll(fd_, data, path_));
  size_ += static_cast<int64_t>(data.size());
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("sync on closed file");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int rc = ::close(fd_);
  fd_ = -1;
  size_ = 0;
  if (rc != 0) return Errno("close", path_);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status st = WriteAll(fd, data, tmp);
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync", tmp);
  if (::close(fd) != 0 && st.ok()) st = Errno("close", tmp);
  if (!st.ok()) {
    (void)::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rn = Errno("rename", path);
    (void)::unlink(tmp.c_str());
    return rn;
  }
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    (void)SyncDir(path.substr(0, slash));
  }
  return Status::OK();
}

Status CreateDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status TruncateFile(const std::string& path, int64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Errno("open", path);
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = Errno("fsync", path);
  ::close(fd);
  return st;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<int64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<int64_t>(st.st_size);
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open", dir);
  // Some filesystems reject fsync on directories (EINVAL); the rename is
  // still ordered on the journals that matter, so treat that as success.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    const Status st = Errno("fsync", dir);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace quick
