#ifndef QUICK_COMMON_THREAD_POOL_H_
#define QUICK_COMMON_THREAD_POOL_H_

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"

namespace quick {

/// Fixed-size pool executing submitted closures FIFO. Shutdown() drains
/// queued work, then joins.
class ThreadPool {
 public:
  /// `queue_capacity` bounds pending work so producers exert back-pressure
  /// instead of queueing unboundedly (the paper's Scanner waits until "at
  /// least one worker has no task to process").
  explicit ThreadPool(int num_threads, size_t queue_capacity = SIZE_MAX);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocks when the queue is full. Returns false after Shutdown().
  bool Submit(std::function<void()> task);

  /// Non-blocking submit; false when full or shut down.
  bool TrySubmit(std::function<void()> task);

  /// Number of tasks waiting (excludes running tasks).
  size_t PendingTasks() const { return queue_.Size(); }

  /// True when some thread is idle and the queue is empty — the Scanner's
  /// "has a free worker" probe.
  bool HasIdleThread() const;

  int NumThreads() const { return static_cast<int>(threads_.size()); }

  /// Stops accepting work, drains the queue, joins all threads. Idempotent.
  void Shutdown();

 private:
  void RunLoop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::atomic<int> active_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace quick

#endif  // QUICK_COMMON_THREAD_POOL_H_
