#ifndef QUICK_COMMON_HISTOGRAM_H_
#define QUICK_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace quick {

/// Point-in-time summary of a histogram: the percentile block the
/// machine-readable exporters (Prometheus text, JSON, BENCH_*.json) emit.
struct HistogramStats {
  int64_t count = 0;
  int64_t sum = 0;
  double mean = 0.0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  int64_t p999 = 0;
};

/// Thread-safe log-linear histogram of non-negative int64 samples
/// (microseconds in this library). Buckets cover [0, ~2^62) with bounded
/// relative error (each power-of-two range split into 16 linear
/// sub-buckets), which is accurate enough for the p50/p99.9 numbers the
/// paper's Figures 5–7 report.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);

  /// Value at quantile q in [0, 1]; returns an upper bound of the containing
  /// bucket. Returns 0 when empty.
  int64_t Percentile(double q) const;

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Min() const;
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Snapshot of count/sum/mean/min/max and the p50/p95/p99/p999 block.
  /// Each field is read atomically; a concurrent Record may land between
  /// field reads (the summary is advisory, like every sample here).
  HistogramStats Stats() const;

  void Reset();

  /// Adds all samples of `other` into this histogram.
  void Merge(const Histogram& other);

  /// "count=N mean=X p50=A p99=B p999=C max=D" — values in the unit they
  /// were recorded in.
  std::string Summary() const;

 private:
  static constexpr int kSubBuckets = 16;
  static constexpr int kBucketCount = 64 * kSubBuckets;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int index);

  std::atomic<int64_t> count_;
  std::atomic<int64_t> sum_;
  std::atomic<int64_t> max_;
  std::vector<std::atomic<int64_t>> buckets_;
};

}  // namespace quick

#endif  // QUICK_COMMON_HISTOGRAM_H_
