#include "common/bytes.h"

#include <cstdio>

namespace quick {

KeyRange KeyRange::Single(std::string_view key) {
  return {std::string(key), KeyAfter(key)};
}

KeyRange KeyRange::Prefix(std::string_view prefix) {
  std::optional<std::string> end = Strinc(prefix);
  if (!end.has_value()) return {std::string(prefix), std::string(prefix)};
  return {std::string(prefix), *std::move(end)};
}

std::optional<std::string> Strinc(std::string_view key) {
  // Strip trailing 0xFF bytes; the remaining suffix byte is incremented.
  size_t end = key.size();
  while (end > 0 && static_cast<unsigned char>(key[end - 1]) == 0xFF) {
    --end;
  }
  if (end == 0) return std::nullopt;
  std::string out(key.substr(0, end));
  out[end - 1] = static_cast<char>(static_cast<unsigned char>(out[end - 1]) + 1);
  return out;
}

std::string KeyAfter(std::string_view key) {
  std::string out(key);
  out.push_back('\x00');
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string EscapeBytes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c >= 0x20 && c < 0x7F && c != '\\') {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02X", c);
      out += buf;
    }
  }
  return out;
}

std::string EncodeBigEndian64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  return out;
}

uint64_t DecodeBigEndian64(std::string_view s) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < s.size(); ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

std::string EncodeLittleEndian64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  return out;
}

uint64_t DecodeLittleEndian64(std::string_view s) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    uint64_t b = i < s.size() ? static_cast<unsigned char>(s[i]) : 0;
    v |= b << (8 * i);
  }
  return v;
}

}  // namespace quick
