#include "common/status.h"

namespace quick {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kPermanent:
      return "PERMANENT";
    case StatusCode::kLeaseLost:
      return "LEASE_LOST";
    case StatusCode::kThrottled:
      return "THROTTLED";
    case StatusCode::kTenantMoving:
      return "TENANT_MOVING";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kNotCommitted:
      return "NOT_COMMITTED";
    case StatusCode::kTransactionTooOld:
      return "TRANSACTION_TOO_OLD";
    case StatusCode::kTransactionTooLarge:
      return "TRANSACTION_TOO_LARGE";
    case StatusCode::kCommitUnknownResult:
      return "COMMIT_UNKNOWN_RESULT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace quick
