#ifndef QUICK_COMMON_BLOCKING_QUEUE_H_
#define QUICK_COMMON_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace quick {

/// Bounded MPMC queue used between the Scanner, Manager pool, and Worker
/// pool of a consumer. Close() wakes all waiters; Pop() then drains
/// remaining items before returning nullopt.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks while full. Returns false when the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace quick

#endif  // QUICK_COMMON_BLOCKING_QUEUE_H_
