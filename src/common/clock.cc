#include "common/clock.h"

#include <thread>

namespace quick {

namespace {
int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int64_t SystemClock::NowMillis() const { return SteadyMicros() / 1000; }

int64_t SystemClock::NowMicros() const { return SteadyMicros(); }

void SystemClock::SleepMillis(int64_t millis) {
  if (millis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  }
}

SystemClock* SystemClock::Default() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace quick
