#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace quick {

Histogram::Histogram()
    : count_(0), sum_(0), max_(0), buckets_(kBucketCount) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  // Highest set bit selects the power-of-two range; the next 4 bits select
  // the linear sub-bucket within it.
  const int log2 = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int sub = static_cast<int>((value >> (log2 - 4)) & (kSubBuckets - 1));
  const int index = (log2 - 3) * kSubBuckets + sub;
  return std::min(index, kBucketCount - 1);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return index;
  const int log2 = index / kSubBuckets + 3;
  const int sub = index % kSubBuckets;
  return (int64_t{1} << log2) + (int64_t{sub + 1} << (log2 - 4)) - 1;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Percentile(double q) const {
  const int64_t total = Count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(total) + 0.5));
  int64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBound(i);
  }
  return Max();
}

int64_t Histogram::Min() const {
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i].load(std::memory_order_relaxed) > 0) {
      return i < kSubBuckets ? i : BucketUpperBound(i - 1) + 1;
    }
  }
  return 0;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0
                : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                      static_cast<double>(n);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    const int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  int64_t omax = other.Max();
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (omax > prev &&
         !max_.compare_exchange_weak(prev, omax, std::memory_order_relaxed)) {
  }
}

HistogramStats Histogram::Stats() const {
  HistogramStats stats;
  stats.count = Count();
  stats.sum = Sum();
  stats.mean = Mean();
  stats.min = Min();
  stats.max = Max();
  stats.p50 = Percentile(0.50);
  stats.p95 = Percentile(0.95);
  stats.p99 = Percentile(0.99);
  stats.p999 = Percentile(0.999);
  return stats;
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%lld p99=%lld p999=%lld max=%lld",
                static_cast<long long>(Count()), Mean(),
                static_cast<long long>(Percentile(0.50)),
                static_cast<long long>(Percentile(0.99)),
                static_cast<long long>(Percentile(0.999)),
                static_cast<long long>(Max()));
  return buf;
}

}  // namespace quick
