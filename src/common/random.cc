#include "common/random.h"

#include <atomic>

namespace quick {

std::string Random::NextUuid() {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  uint64_t hi = NextU64();
  uint64_t lo = NextU64();
  for (int i = 0; i < 16; ++i) {
    out[i] = kHex[(hi >> (4 * i)) & 0xF];
    out[16 + i] = kHex[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

Random& Random::ThreadLocal() {
  static std::atomic<uint64_t> counter{0x9E3779B97F4A7C15ULL};
  thread_local Random rng(counter.fetch_add(0x9E3779B97F4A7C15ULL));
  return rng;
}

}  // namespace quick
