#ifndef QUICK_COMMON_RANDOM_H_
#define QUICK_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>

namespace quick {

/// Seeded pseudo-random source. Each component owns its own Random so
/// experiments are reproducible given the seeds; not thread-safe (use one
/// per thread).
class Random {
 public:
  explicit Random(uint64_t seed = 0x5DEECE66DULL) : engine_(seed) {}

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  uint64_t NextU64() { return engine_(); }

  /// 32 hex chars; used for item ids and lease ids (the paper's randomly
  /// generated UUIDs).
  std::string NextUuid();

  std::mt19937_64& engine() { return engine_; }

  /// Thread-local instance seeded from a global entropy source; convenient
  /// for code paths where plumbing a Random* is not worth it (uuid
  /// generation inside operations).
  static Random& ThreadLocal();

 private:
  std::mt19937_64 engine_;
};

}  // namespace quick

#endif  // QUICK_COMMON_RANDOM_H_
