#ifndef QUICK_COMMON_STATUS_H_
#define QUICK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace quick {

/// Error codes used across the library. The FDB-flavoured codes
/// (kNotCommitted, kTransactionTooOld, kCommitUnknownResult,
/// kTransactionTooLarge) mirror the errors a FoundationDB client observes and
/// drive the retry loop in fdb::RunTransaction.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnavailable = 6,          // transient: downstream unreachable / throttled
  kTimedOut = 7,
  kInternal = 8,
  kPermanent = 9,            // permanent task failure (e.g. user deleted)
  kLeaseLost = 10,           // lease no longer held by the caller
  kThrottled = 11,           // admission control: retry after the indicated
                             // delay (message carries "retry_after_ms=N")
  kTenantMoving = 12,        // tenant fenced mid-migration; re-resolve
                             // placement and retry at the new home
  kCancelled = 13,           // caller cancelled the operation (e.g. an async
                             // transaction chain torn down by Consumer::Stop)
  // FoundationDB transaction errors.
  kNotCommitted = 20,        // optimistic-concurrency conflict
  kTransactionTooOld = 21,   // read version fell out of the MVCC window
  kTransactionTooLarge = 22, // exceeded the transaction size limit
  kCommitUnknownResult = 23, // commit outcome unknown (maybe committed)
};

/// Returns a stable human-readable name for `code`.
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value in the RocksDB/Arrow style. Cheap to copy on the
/// OK path (no allocation); errors carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Permanent(std::string m) {
    return Status(StatusCode::kPermanent, std::move(m));
  }
  static Status LeaseLost(std::string m = "lease lost") {
    return Status(StatusCode::kLeaseLost, std::move(m));
  }
  static Status Throttled(std::string m = "throttled") {
    return Status(StatusCode::kThrottled, std::move(m));
  }
  static Status TenantMoving(std::string m = "tenant moving") {
    return Status(StatusCode::kTenantMoving, std::move(m));
  }
  static Status Cancelled(std::string m = "cancelled") {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status NotCommitted(std::string m = "transaction conflict") {
    return Status(StatusCode::kNotCommitted, std::move(m));
  }
  static Status TransactionTooOld(std::string m = "transaction too old") {
    return Status(StatusCode::kTransactionTooOld, std::move(m));
  }
  static Status TransactionTooLarge(std::string m = "transaction too large") {
    return Status(StatusCode::kTransactionTooLarge, std::move(m));
  }
  static Status CommitUnknownResult(std::string m = "commit unknown result") {
    return Status(StatusCode::kCommitUnknownResult, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsThrottled() const { return code_ == StatusCode::kThrottled; }
  bool IsTenantMoving() const { return code_ == StatusCode::kTenantMoving; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsNotCommitted() const { return code_ == StatusCode::kNotCommitted; }
  bool IsLeaseLost() const { return code_ == StatusCode::kLeaseLost; }
  bool IsPermanent() const { return code_ == StatusCode::kPermanent; }
  bool IsCommitUnknownResult() const {
    return code_ == StatusCode::kCommitUnknownResult;
  }

  /// True for errors that a FoundationDB-style retry loop may retry: the
  /// transaction can be reset and re-executed. kCommitUnknownResult is
  /// retryable for idempotent transactions (QuiCK's are; see §2 of the
  /// paper, "at-least-once").
  bool retryable() const {
    switch (code_) {
      case StatusCode::kNotCommitted:
      case StatusCode::kTransactionTooOld:
      case StatusCode::kCommitUnknownResult:
      case StatusCode::kUnavailable:
      case StatusCode::kTimedOut:
        return true;
      default:
        return false;
    }
  }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr`; returns the resulting non-OK Status from the enclosing
/// function.
#define QUICK_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::quick::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace quick

#endif  // QUICK_COMMON_STATUS_H_
