#ifndef QUICK_COMMON_FILE_IO_H_
#define QUICK_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace quick {

/// Thin POSIX file shim behind the durability layer (WAL segments and
/// checkpoints). Everything returns Status so injected and real disk
/// failures flow through the same error channel as the rest of the
/// library; no exceptions, no iostream buffering surprises on the fsync
/// path.

/// An append-only file with explicit durability. Writes buffer in the
/// kernel; Sync() fsyncs. Not thread-safe — the WAL serializes appends.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  /// Opens `path` for appending, creating it when absent.
  Status Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends `data` at the end of the file (no durability implied).
  Status Append(std::string_view data);

  /// Forces written data to stable storage (fsync).
  Status Sync();

  /// Current file size in bytes (append offset).
  int64_t Size() const { return size_; }

  Status Close();

 private:
  int fd_ = -1;
  int64_t size_ = 0;
  std::string path_;
};

/// Reads the whole file into a string; kNotFound when absent.
Result<std::string> ReadFile(const std::string& path);

/// Writes `data` to `path` atomically: write to `path.tmp`, fsync, rename,
/// then fsync the containing directory so the rename itself is durable.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// Creates `path` (and parents) like `mkdir -p`; OK when it already exists.
Status CreateDirs(const std::string& path);

/// Sorted names (not paths) of regular files directly under `dir`;
/// kNotFound when the directory does not exist.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Truncates the file to `size` bytes and fsyncs it (recovery chops torn
/// or corrupt log suffixes with this).
Status TruncateFile(const std::string& path, int64_t size);

Status RemoveFile(const std::string& path);

bool FileExists(const std::string& path);

/// Size in bytes; kNotFound when absent.
Result<int64_t> FileSize(const std::string& path);

/// fsyncs directory `dir` so that renames/creates/unlinks inside it are
/// durable (best effort on filesystems that reject directory fsync).
Status SyncDir(const std::string& dir);

}  // namespace quick

#endif  // QUICK_COMMON_FILE_IO_H_
