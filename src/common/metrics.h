#ifndef QUICK_COMMON_METRICS_H_
#define QUICK_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace quick {

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Named metric registry. The paper stresses per-tenant observability
/// (§2 "Operations and monitoring"); consumers and stores register counters
/// and latency histograms here and the benches/report tooling read them out.
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first
  /// use. Samples are by convention microseconds.
  Histogram* GetHistogram(const std::string& name);

  /// All counters as (name, value), sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;

  /// Multi-line human-readable dump of all metrics.
  std::string Report() const;

  void ResetAll();

  /// Process-wide default registry.
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace quick

#endif  // QUICK_COMMON_METRICS_H_
