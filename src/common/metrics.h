#ifndef QUICK_COMMON_METRICS_H_
#define QUICK_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace quick {

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

  /// Atomically reads and zeroes the counter. Unlike Value()-then-Reset(),
  /// a concurrent Increment lands either in the returned value or in the
  /// next epoch — never in both, never in neither. SnapshotAndReset() uses
  /// this so periodic scrapes cannot lose increments.
  int64_t Take() { return v_.exchange(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, pool sizes,
/// published consumer stats).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Coherent point-in-time view of a whole registry: all three metric kinds
/// captured under one lock acquisition, each list sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
};

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

/// `{"count":N,"sum":S,"mean":M,...}` — the JSON form of a histogram
/// summary, shared by ExportJson and the bench-report writer.
std::string HistogramStatsJson(const HistogramStats& stats);

/// Named metric registry. The paper stresses per-tenant observability
/// (§2 "Operations and monitoring"); consumers and stores register
/// counters, gauges, and latency histograms here, and the exporters below
/// hand them to the benches, the report tooling, and CI in machine-
/// readable form.
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);

  /// Returns the gauge registered under `name`, creating it on first use.
  Gauge* GetGauge(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first
  /// use. Samples are by convention microseconds.
  Histogram* GetHistogram(const std::string& name);

  /// All counters as (name, value), sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;

  /// All gauges as (name, value), sorted by name.
  std::vector<std::pair<std::string, int64_t>> GaugeSnapshot() const;

  /// All histograms as (name, stats), sorted by name.
  std::vector<std::pair<std::string, HistogramStats>> HistogramSnapshot()
      const;

  /// Counters, gauges, and histograms in one registry-lock acquisition:
  /// no metric can be registered or reset between the three views.
  MetricsSnapshot Snapshot() const;

  /// Snapshot-then-reset as one registry-level critical section, with
  /// counters drained via Counter::Take() — a concurrent Increment is
  /// either in the returned snapshot or in the registry afterwards, never
  /// lost (the scrape-epoch contract Report()/ResetAll() pairs cannot
  /// give). Histogram samples racing the reset may land in either epoch.
  MetricsSnapshot SnapshotAndReset();

  /// Multi-line human-readable dump of all metrics.
  std::string Report() const;

  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// single samples, histograms as summaries with p50/p95/p99/p999
  /// quantiles plus _sum/_count. Metric names are sanitized to
  /// [a-zA-Z0-9_] (dots become underscores).
  std::string ExportPrometheusText() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name: {count,sum,mean,min,max,p50,p95,p99,p999}}}. Keys keep their
  /// registered (dotted) names.
  std::string ExportJson() const;

  void ResetAll();

  /// Process-wide default registry.
  static MetricsRegistry* Default();

 private:
  MetricsSnapshot SnapshotLocked() const;  // caller holds mu_

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace quick

#endif  // QUICK_COMMON_METRICS_H_
