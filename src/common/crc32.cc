#include "common/crc32.h"

#include <array>

namespace quick {

namespace {

// CRC-32C (Castagnoli) reflected polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32cInit() { return 0xFFFFFFFFu; }

uint32_t Crc32cExtend(uint32_t state, std::string_view data) {
  const std::array<uint32_t, 256>& table = Table();
  for (const char c : data) {
    state = table[(state ^ static_cast<unsigned char>(c)) & 0xFF] ^
            (state >> 8);
  }
  return state;
}

uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32c(std::string_view data) {
  return Crc32cFinish(Crc32cExtend(Crc32cInit(), data));
}

}  // namespace quick
