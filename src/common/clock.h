#ifndef QUICK_COMMON_CLOCK_H_
#define QUICK_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace quick {

/// Time source abstraction. All vesting-time and lease arithmetic in the
/// library goes through a Clock* so unit tests can advance time without
/// sleeping (ManualClock) while benchmarks use wall time (SystemClock).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds since an arbitrary fixed epoch. Values from one Clock
  /// instance are mutually comparable; the library never mixes clocks.
  virtual int64_t NowMillis() const = 0;

  /// Microseconds since the same epoch as NowMillis().
  virtual int64_t NowMicros() const = 0;

  /// Blocks the caller for `millis` of this clock's time.
  virtual void SleepMillis(int64_t millis) = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock (monotonic,
/// immune to NTP steps; the paper's vesting times only require a clock all
/// participants agree on, which a single process trivially has).
class SystemClock : public Clock {
 public:
  int64_t NowMillis() const override;
  int64_t NowMicros() const override;
  void SleepMillis(int64_t millis) override;

  /// Process-wide instance.
  static SystemClock* Default();
};

/// Deterministic test clock. Sleeping auto-advances the clock by the
/// requested amount (no real blocking), which keeps retry loops and
/// backoffs deadlock-free under test while preserving the arithmetic of
/// vesting times and leases.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_millis = 0)
      : now_micros_(start_millis * 1000) {}

  int64_t NowMillis() const override { return now_micros_.load() / 1000; }
  int64_t NowMicros() const override { return now_micros_.load(); }

  /// Advances the clock instead of blocking.
  void SleepMillis(int64_t millis) override {
    if (millis > 0) AdvanceMillis(millis);
  }

  /// Moves time forward.
  void AdvanceMillis(int64_t millis) {
    now_micros_.fetch_add(millis * 1000);
  }

 private:
  std::atomic<int64_t> now_micros_;
};

}  // namespace quick

#endif  // QUICK_COMMON_CLOCK_H_
