#include "common/thread_pool.h"

namespace quick {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_(queue_capacity) {
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { RunLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  if (shutdown_.load()) return false;
  return queue_.Push(std::move(task));
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (shutdown_.load()) return false;
  return queue_.TryPush(std::move(task));
}

bool ThreadPool::HasIdleThread() const {
  return active_.load(std::memory_order_relaxed) <
             static_cast<int>(threads_.size()) &&
         queue_.Empty();
}

void ThreadPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    // Another caller already shut down; still join if needed.
  }
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::RunLoop() {
  while (true) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task.has_value()) return;
    active_.fetch_add(1, std::memory_order_relaxed);
    (*task)();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace quick
