#ifndef QUICK_COMMON_BYTES_H_
#define QUICK_COMMON_BYTES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace quick {

/// Keys and values throughout the library are byte strings ordered
/// lexicographically by unsigned byte value, exactly as in FoundationDB.
/// std::string's operator< already provides that ordering (char comparison
/// is done through unsigned char in the library's traits for the purposes
/// we rely on: we only ever compare encoded tuples, which never depend on
/// signedness because std::char_traits::compare uses memcmp semantics).

/// Half-open key interval [begin, end). Shared by the FDB simulator, the
/// tuple layer, and the Record Layer.
struct KeyRange {
  std::string begin;
  std::string end;

  bool Contains(std::string_view key) const {
    return key >= begin && key < end;
  }
  bool Intersects(const KeyRange& other) const {
    return begin < other.end && other.begin < end;
  }
  bool empty() const { return begin >= end; }

  /// The range covering exactly one key.
  static KeyRange Single(std::string_view key);
  /// All keys having `prefix` (empty range when prefix is all-0xFF).
  static KeyRange Prefix(std::string_view prefix);
  /// The whole keyspace.
  static KeyRange All() { return {std::string(), std::string(1, '\xFF')}; }
};

/// Returns the first key that is not prefixed by `key`: increments the last
/// byte that is not 0xFF and truncates after it (FoundationDB's `strinc`).
/// Returns nullopt when key is empty or all bytes are 0xFF (no such key).
std::optional<std::string> Strinc(std::string_view key);

/// Returns the immediate successor of `key` in lexicographic order:
/// key + '\x00'.
std::string KeyAfter(std::string_view key);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Renders a byte string with non-printable bytes escaped as \xNN — for
/// logs and test failure messages.
std::string EscapeBytes(std::string_view s);

/// Fixed-width big-endian encoding of an unsigned 64-bit value; preserves
/// numeric order under lexicographic byte comparison.
std::string EncodeBigEndian64(uint64_t v);
uint64_t DecodeBigEndian64(std::string_view s);

/// Little-endian 64-bit encodings used by FDB atomic ADD/MIN/MAX operands.
std::string EncodeLittleEndian64(uint64_t v);
uint64_t DecodeLittleEndian64(std::string_view s);

}  // namespace quick

#endif  // QUICK_COMMON_BYTES_H_
