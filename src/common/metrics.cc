#include "common/metrics.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace quick {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
/// (the registry's dots in particular) to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string HistogramStatsJson(const HistogramStats& stats) {
  std::ostringstream os;
  os << "{\"count\":" << stats.count << ",\"sum\":" << stats.sum
     << ",\"mean\":" << FormatDouble(stats.mean) << ",\"min\":" << stats.min
     << ",\"max\":" << stats.max << ",\"p50\":" << stats.p50
     << ",\"p95\":" << stats.p95 << ",\"p99\":" << stats.p99
     << ",\"p999\":" << stats.p999 << "}";
  return os.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::SnapshotLocked() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Stats());
  }
  return snap;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramStats>>
MetricsRegistry::HistogramSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramStats>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Stats());
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

MetricsSnapshot MetricsRegistry::SnapshotAndReset() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    // Take, not Value+Reset: increments racing the scrape are handed to
    // exactly one epoch.
    snap.counters.emplace_back(name, counter->Take());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());  // gauges are not reset
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Stats());
    histogram->Reset();
  }
  return snap;
}

std::string MetricsRegistry::Report() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << name << " = " << value << " (gauge)\n";
  }
  for (const auto& [name, stats] : snap.histograms) {
    os << name << " : count=" << stats.count << " mean=" << stats.mean
       << " p50=" << stats.p50 << " p99=" << stats.p99
       << " p999=" << stats.p999 << " max=" << stats.max << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ExportPrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " " << value << "\n";
  }
  for (const auto& [name, stats] : snap.histograms) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " summary\n";
    os << prom << "{quantile=\"0.5\"} " << stats.p50 << "\n";
    os << prom << "{quantile=\"0.95\"} " << stats.p95 << "\n";
    os << prom << "{quantile=\"0.99\"} " << stats.p99 << "\n";
    os << prom << "{quantile=\"0.999\"} " << stats.p999 << "\n";
    os << prom << "_sum " << stats.sum << "\n";
    os << prom << "_count " << stats.count << "\n";
    os << prom << "_max " << stats.max << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ExportJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(snap.counters[i].first)
       << "\":" << snap.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(snap.gauges[i].first)
       << "\":" << snap.gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(snap.histograms[i].first)
       << "\":" << HistogramStatsJson(snap.histograms[i].second);
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace quick
