#include "common/metrics.h"

#include <sstream>

namespace quick {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " = " << counter->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << name << " : " << histogram->Summary() << "\n";
  }
  return os.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace quick
