#ifndef QUICK_COMMON_RESULT_H_
#define QUICK_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace quick {

/// Holds either a value of type T or a non-OK Status (Arrow's Result /
/// absl::StatusOr idiom). Construction from a value or from an error Status
/// is implicit so functions can `return value;` or `return status;`.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result built from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when a value is held, otherwise the held error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define QUICK_ASSIGN_OR_RETURN(lhs, rexpr)          \
  QUICK_ASSIGN_OR_RETURN_IMPL_(                     \
      QUICK_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define QUICK_CONCAT_INNER_(a, b) a##b
#define QUICK_CONCAT_(a, b) QUICK_CONCAT_INNER_(a, b)
#define QUICK_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace quick

#endif  // QUICK_COMMON_RESULT_H_
