#ifndef QUICK_COMMON_LOGGING_H_
#define QUICK_COMMON_LOGGING_H_

#include <iostream>
#include <mutex>
#include <sstream>

namespace quick {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Benchmarks raise the level to
/// kWarn so timing isn't polluted by log I/O.
class Logger {
 public:
  static LogLevel& Threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static std::mutex& Mutex() {
    static std::mutex mu;
    return mu;
  }

  static void Write(LogLevel level, const std::string& msg) {
    static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard<std::mutex> lock(Mutex());
    std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << msg << "\n";
  }
};

#define QUICK_LOG(level, expr)                                             \
  do {                                                                     \
    if (static_cast<int>(::quick::LogLevel::level) >=                      \
        static_cast<int>(::quick::Logger::Threshold())) {                  \
      std::ostringstream _qlog_os;                                         \
      _qlog_os << expr;                                                    \
      ::quick::Logger::Write(::quick::LogLevel::level, _qlog_os.str());    \
    }                                                                      \
  } while (false)

}  // namespace quick

#endif  // QUICK_COMMON_LOGGING_H_
