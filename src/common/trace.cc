#include "common/trace.h"

#include <algorithm>
#include <cstdlib>

namespace quick {

Tracer::Tracer() : Tracer(Options()) {}

Tracer::Tracer(Options options)
    : options_(options), enabled_(options.enabled) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.max_traces < 1) options_.max_traces = 1;
  if (options_.max_spans_per_trace < 1) options_.max_spans_per_trace = 1;
  per_shard_cap_ = std::max<size_t>(
      1, options_.max_traces / static_cast<size_t>(options_.shards));
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Tracer::~Tracer() = default;

void Tracer::Record(Span span) {
  if (!enabled()) return;
  Shard& shard = *shards_[ShardFor(span.trace_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  span.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto it = shard.chains.find(span.trace_id);
  if (it == shard.chains.end()) {
    // Make room: evict the least recently updated chain(s) of this shard.
    while (shard.chains.size() >= per_shard_cap_) {
      auto victim = shard.chains.find(shard.lru.front());
      if (victim != shard.chains.end()) {
        span_count_.fetch_sub(victim->second.spans.size(),
                              std::memory_order_relaxed);
        shard.chains.erase(victim);
      }
      shard.lru.pop_front();
      evicted_traces_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_back(span.trace_id);
    it = shard.chains.emplace(span.trace_id, Chain{}).first;
    it->second.lru_pos = std::prev(shard.lru.end());
  } else {
    // Touch: active chains move to the back of the eviction order.
    shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_pos);
  }
  Chain& chain = it->second;
  if (chain.spans.size() >= options_.max_spans_per_trace) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  chain.spans.push_back(std::move(span));
  span_count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Span> Tracer::TraceOf(const std::string& trace_id) const {
  const Shard& shard = *shards_[ShardFor(trace_id)];
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(trace_id);
    if (it == shard.chains.end()) return out;
    out = it->second.spans;
  }
  // Seq is taken from the global counter before the append lands, so two
  // racing recorders can append slightly out of order; normalize here.
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  return out;
}

bool Tracer::Has(const std::string& trace_id) const {
  const Shard& shard = *shards_[ShardFor(trace_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chains.count(trace_id) > 0;
}

std::vector<std::string> Tracer::TraceIds() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, chain] : shard->chains) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Tracer::TraceCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->chains.size();
  }
  return n;
}

void Tracer::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->chains.clear();
    shard->lru.clear();
  }
  span_count_.store(0);
  evicted_traces_.store(0);
  dropped_spans_.store(0);
}

Tracer* Tracer::Default() {
  static Tracer* tracer = [] {
    Options options;
    const char* env = std::getenv("QUICK_TRACE");
    options.enabled = env != nullptr && env[0] != '\0' && env[0] != '0';
    return new Tracer(options);
  }();
  return tracer;
}

}  // namespace quick
