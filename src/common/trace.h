#ifndef QUICK_COMMON_TRACE_H_
#define QUICK_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace quick {

/// One timed event in a trace (Dapper-style span): a named, timed lifecycle
/// stage attributed to an actor. Spans with the same `trace_id` form an
/// item's lifecycle chain; `parent_trace` links causally-related chains
/// (e.g. a work item's dequeue span points at the pointer trace whose lease
/// made the dequeue happen).
struct Span {
  std::string trace_id;
  /// Stage name (quick/trace_hooks.h defines QuiCK's taxonomy).
  std::string name;
  /// Who recorded it: a consumer id, "producer", or "admin".
  std::string actor;
  /// Free-form stage detail (collision kind, quarantine reason, ...).
  std::string detail;
  /// Optional link to a related trace chain.
  std::string parent_trace;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  /// Store-global record order: a span with a larger seq was recorded
  /// later. Assigned by the Tracer.
  uint64_t seq = 0;
};

/// In-process span store: lock-sharded, bounded memory, queryable per-item
/// span chains. The paper's per-tenant observability story (§2) needs the
/// lifecycle of any single item to be reconstructable; this store keeps the
/// most recently active `max_traces` chains and evicts the least recently
/// updated chain when the bound is hit (active chains are never evicted
/// before idle ones). Recording is wait-free apart from one shard mutex;
/// disabled tracers cost a single relaxed atomic load per call site.
class Tracer {
 public:
  struct Options {
    /// Maximum chains kept across all shards (split evenly per shard).
    size_t max_traces = 16384;
    /// Further spans of a chain at this cap are counted in
    /// dropped_spans() and discarded.
    size_t max_spans_per_trace = 4096;
    int shards = 16;
    bool enabled = true;
  };

  Tracer();
  explicit Tracer(Options options);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends `span` to its trace chain (span.seq is assigned here).
  /// No-op while disabled.
  void Record(Span span);

  /// The chain recorded under `trace_id`, in seq order; empty when unknown
  /// (never traced, or evicted).
  std::vector<Span> TraceOf(const std::string& trace_id) const;

  /// True when a chain exists for `trace_id`.
  bool Has(const std::string& trace_id) const;

  /// Every live trace id, sorted.
  std::vector<std::string> TraceIds() const;

  /// Live chains / spans currently stored.
  size_t TraceCount() const;
  size_t SpanCount() const { return span_count_.load(); }

  /// Chains evicted by the memory bound since construction/Clear().
  uint64_t EvictedTraces() const { return evicted_traces_.load(); }
  /// Spans discarded by the per-chain cap since construction/Clear().
  uint64_t DroppedSpans() const { return dropped_spans_.load(); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled); }

  /// Drops every chain and zeroes the eviction/drop counters (seq keeps
  /// advancing, so ordering comparisons stay valid across Clear).
  void Clear();

  /// Process-wide default tracer. Starts disabled unless the QUICK_TRACE
  /// environment variable is set to a non-empty, non-"0" value; callers
  /// (tests, benches) flip it with set_enabled().
  static Tracer* Default();

 private:
  struct Chain {
    std::vector<Span> spans;
    std::list<std::string>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Chain> chains;
    /// Eviction order: front = least recently updated.
    std::list<std::string> lru;
  };

  size_t ShardFor(const std::string& trace_id) const {
    return std::hash<std::string>{}(trace_id) % shards_.size();
  }

  Options options_;
  size_t per_shard_cap_;
  std::atomic<bool> enabled_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<size_t> span_count_{0};
  std::atomic<uint64_t> evicted_traces_{0};
  std::atomic<uint64_t> dropped_spans_{0};
};

}  // namespace quick

#endif  // QUICK_COMMON_TRACE_H_
