#ifndef QUICK_COMMON_BACKOFF_H_
#define QUICK_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/random.h"

namespace quick {

/// Exponential backoff schedule with full jitter. Used by the FDB retry
/// loop and by QuiCK's requeue-on-error path ("exponential backoff based on
/// the error count", §6).
class ExponentialBackoff {
 public:
  ExponentialBackoff(int64_t initial_millis, int64_t max_millis,
                     double multiplier = 2.0)
      : initial_millis_(initial_millis),
        max_millis_(max_millis),
        multiplier_(multiplier) {}

  /// Deterministic delay for the given zero-based attempt number:
  /// min(initial * multiplier^attempt, max).
  int64_t DelayForAttempt(int attempt) const {
    double d = static_cast<double>(initial_millis_);
    for (int i = 0; i < attempt && d < static_cast<double>(max_millis_); ++i) {
      d *= multiplier_;
    }
    return std::min<int64_t>(static_cast<int64_t>(d), max_millis_);
  }

  /// Same schedule with full jitter: uniform in [0, DelayForAttempt].
  int64_t JitteredDelayForAttempt(int attempt, Random* rng) const {
    const int64_t cap = DelayForAttempt(attempt);
    return cap <= 0 ? 0 : static_cast<int64_t>(rng->Uniform(cap + 1));
  }

 private:
  int64_t initial_millis_;
  int64_t max_millis_;
  double multiplier_;
};

/// Stateful companion to ExponentialBackoff: tracks the attempt number
/// across calls and resets when the protected operation recovers. Used by
/// the consumer's per-cluster circuit breaker (open-duration growth) and by
/// callers that retry an operation over time rather than in one loop.
class RetryBackoff {
 public:
  RetryBackoff(int64_t initial_millis, int64_t max_millis,
               double multiplier = 2.0)
      : schedule_(initial_millis, max_millis, multiplier) {}
  explicit RetryBackoff(const ExponentialBackoff& schedule)
      : schedule_(schedule) {}

  /// Deterministic delay for the current attempt; advances the attempt
  /// counter.
  int64_t NextDelayMillis() { return schedule_.DelayForAttempt(attempt_++); }

  /// Jittered delay for the current attempt; advances the attempt counter.
  int64_t NextJitteredDelayMillis(Random* rng) {
    return schedule_.JitteredDelayForAttempt(attempt_++, rng);
  }

  /// Attempts handed out since construction or the last Reset().
  int attempt() const { return attempt_; }

  /// Back to the initial delay (call after a success).
  void Reset() { attempt_ = 0; }

 private:
  ExponentialBackoff schedule_;
  int attempt_ = 0;
};

}  // namespace quick

#endif  // QUICK_COMMON_BACKOFF_H_
