#ifndef QUICK_CONTROL_BALANCER_H_
#define QUICK_CONTROL_BALANCER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "cloudkit/migration_state.h"
#include "common/metrics.h"
#include "control/load_monitor.h"
#include "quick/admin.h"
#include "quick/quick.h"

namespace quick::control {

struct BalancerConfig {
  /// Catch-up copy rounds between the bulk copy and the seal: each round
  /// re-copies the (still-changing) source so the sealed window's final
  /// copy is small.
  int catchup_rounds = 1;
  /// How long MoveTenant waits for in-flight item leases to drain after
  /// the seal before aborting the move.
  int64_t drain_timeout_millis = 10000;
  /// Poll interval while draining.
  int64_t drain_poll_millis = 20;
};

/// Public phases of the migration state machine (ck::MoveState persists
/// the on-disk subset; kIdle/kDone are the endpoints).
enum class MovePhase {
  kIdle,     // no move in flight
  kCopying,  // bulk copy / catch-up rounds; traffic still flows
  kSealed,   // fence up; draining leases, then the exact final copy + flip
  kFlipped,  // placement flipped; source data pending delete
  kDone,     // move complete
};

/// Orchestrated, resumable live tenant migration:
///
///   kIdle -> kCopying:  persist MoveState on the source, bulk copy.
///   kCopying (xN):      catch-up rounds — re-copy while traffic flows.
///   kCopying -> kSealed: one transaction raises the fence and removes the
///       source's Q_C pointer. Every enqueue/dequeue reads the fence key
///       strongly, so post-seal the source zone only changes through
///       lease-fenced transitions by pre-seal lease holders.
///   kSealed (drain):    expired ("zombie") leases are superseded by an
///       unfenced requeue (their holders' late transitions then fence);
///       live leases are waited out. When zero leases remain the zone is
///       immutable.
///   kSealed -> kFlipped: exact final copy (queue items AND dead-letter
///       records ride the database prefix), destination pointer created
///       iff the zone is non-empty, placement flipped.
///   kFlipped -> kDone:  source data deleted, fence lowered.
///
/// Every phase transition is persisted in the MoveState record on the
/// SOURCE cluster, so Resume() can pick up a crashed move at any point —
/// including the crash window between the placement flip and the state
/// update (detected by placement already naming the destination).
///
/// Lossless by construction: an item is deleted at the source only after
/// the flip (single delete site), and the final copy runs on a provably
/// quiescent zone — no item can be lost or executed from both clusters.
class TenantBalancer : public core::MoveOrchestrator {
 public:
  explicit TenantBalancer(core::Quick* quick, BalancerConfig config = {},
                          MetricsRegistry* registry =
                              MetricsRegistry::Default());

  /// Drives a move end-to-end: steps the state machine, polling through
  /// the drain window; aborts (and restores the source) on drain timeout.
  Status MoveTenant(const ck::DatabaseId& db_id,
                    const std::string& dest_cluster) override;

  /// Resumes a crashed move found in any cluster's MoveState records;
  /// kNotFound when no move is in flight for the tenant.
  Status Resume(const ck::DatabaseId& db_id);

  /// Executes one transition of the state machine and returns the phase
  /// now reached. Returns kSealed repeatedly while leases drain. Exposed
  /// for tests (and crash-injection) to stop a move at any boundary.
  Result<MovePhase> Step(const ck::DatabaseId& db_id,
                         const std::string& dest_cluster);

  /// Aborts an in-flight move BEFORE the placement flip: lowers the
  /// fence, restores the source's Q_C pointer when the zone is non-empty,
  /// and clears the partial destination copy. kFailedPrecondition once
  /// flipped (the move must then run forward to completion via Resume).
  Status Abort(const ck::DatabaseId& db_id);

  /// Asks `monitor` for a rebalance plan and executes it; false when the
  /// monitor proposes nothing.
  Result<bool> RunPolicyOnce(LoadMonitor* monitor);

  /// Current phase of the tenant's move (kIdle when none).
  Result<MovePhase> Phase(const ck::DatabaseId& db_id);

 private:
  struct FoundState {
    std::string cluster;  // cluster holding the MoveState record
    ck::MoveState state;
  };

  /// Scans every cluster for the tenant's MoveState record. Post-flip the
  /// record lives on the OLD source while placement already names the
  /// destination, so placement alone cannot locate it.
  Result<std::optional<FoundState>> FindState(const ck::DatabaseId& db_id);

  Status WriteState(const std::string& cluster, const ck::DatabaseId& db_id,
                    const ck::MoveState& state);
  Status ClearState(const std::string& cluster, const ck::DatabaseId& db_id);
  Status ClearDestData(const ck::DatabaseId& db_id, const std::string& dest);

  core::Quick* quick_;
  ck::CloudKitService* ck_;
  BalancerConfig config_;

  Counter* moves_started_;
  Counter* moves_completed_;
  Counter* moves_aborted_;
  Counter* moves_resumed_;
  Counter* catchup_rounds_run_;
  Counter* drain_waits_;
  Counter* zombie_requeues_;
};

}  // namespace quick::control

#endif  // QUICK_CONTROL_BALANCER_H_
