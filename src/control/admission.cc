#include "control/admission.h"

#include <algorithm>

namespace quick::control {

AdmissionController::AdmissionController(AdmissionConfig config, Clock* clock,
                                         MetricsRegistry* registry)
    : config_(config),
      clock_(clock),
      registry_(registry),
      admitted_(registry->GetCounter("quick.admission.admitted")),
      throttled_tenant_(
          registry->GetCounter("quick.admission.throttled.tenant")),
      throttled_app_(registry->GetCounter("quick.admission.throttled.app")),
      throttled_cluster_(
          registry->GetCounter("quick.admission.throttled.cluster")),
      shed_(registry->GetCounter("quick.admission.shed")),
      dispatch_admitted_(
          registry->GetCounter("quick.admission.dispatch_admitted")),
      dispatch_throttled_(
          registry->GetCounter("quick.admission.dispatch_throttled")) {}

AdmissionController::TenantState* AdmissionController::Tenant(
    const std::string& key) {
  auto it = tenants_.find(key);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(key,
                      TenantState{
                          TokenBucket(config_.tenant.burst,
                                      config_.tenant.rate_per_sec, clock_),
                          TokenBucket(config_.dispatch_tenant.burst,
                                      config_.dispatch_tenant.rate_per_sec,
                                      clock_),
                          /*debt=*/0,
                          /*last_decay_micros=*/clock_->NowMicros()})
             .first;
  }
  return &it->second;
}

TokenBucket* AdmissionController::Shared(
    std::unordered_map<std::string, TokenBucket>* map, const std::string& key,
    const AdmissionLimits& limits) {
  auto it = map->find(key);
  if (it == map->end()) {
    it = map->emplace(key, TokenBucket(limits.burst, limits.rate_per_sec,
                                       clock_))
             .first;
  }
  return &it->second;
}

void AdmissionController::DecayDebt(TenantState* t) {
  // Debt drains at the tenant's own refill rate: a tenant that stops
  // over-sending earns its way back to fair standing in the same time it
  // would take to refill the tokens it over-asked for.
  const int64_t now = clock_->NowMicros();
  if (now <= t->last_decay_micros) return;
  const double elapsed_sec = (now - t->last_decay_micros) * 1e-6;
  const double rate = config_.tenant.rate_per_sec > 0
                          ? config_.tenant.rate_per_sec
                          : 1.0;
  t->debt = std::max(0.0, t->debt - elapsed_sec * rate);
  t->last_decay_micros = now;
}

core::AdmissionDecision AdmissionController::Deny(TenantState* t,
                                                  const char* level,
                                                  int64_t raw_retry_millis,
                                                  Counter* counter) {
  core::AdmissionDecision d;
  d.level = level;
  int64_t retry = raw_retry_millis;
  if (config_.fair_share && t != nullptr) {
    const double rate = config_.tenant.rate_per_sec > 0
                            ? config_.tenant.rate_per_sec
                            : 1.0;
    retry += static_cast<int64_t>(t->debt * 1000.0 / rate);
    if (retry >= config_.shed_after_millis) {
      d.outcome = core::AdmissionDecision::Outcome::kShed;
      d.retry_after_millis =
          std::min(retry, config_.max_retry_after_millis);
      shed_->Increment();
      return d;
    }
  }
  d.outcome = core::AdmissionDecision::Outcome::kThrottle;
  d.retry_after_millis = std::min(retry, config_.max_retry_after_millis);
  counter->Increment();
  return d;
}

core::AdmissionDecision AdmissionController::AdmitEnqueue(
    const ck::DatabaseId& db_id, const std::string& cluster, int64_t cost) {
  core::AdmissionDecision admit;
  if (!config_.enabled) return admit;
  const double n = static_cast<double>(std::max<int64_t>(1, cost));

  std::lock_guard<std::mutex> lock(mu_);
  TenantState* tenant = Tenant(db_id.ToString());
  DecayDebt(tenant);

  // 1. Tenant bucket. A refusal here charges debt and stops — the shared
  //    app/cluster buckets are untouched, so a refused hot tenant cannot
  //    eat its neighbors' capacity.
  if (!tenant->bucket.TryAcquire(n)) {
    if (config_.fair_share) tenant->debt += n;
    return Deny(tenant, "tenant", tenant->bucket.RetryAfterMillis(n),
                throttled_tenant_);
  }

  // 2. App bucket; roll the tenant charge back on refusal.
  TokenBucket* app = Shared(&apps_, db_id.app, config_.app);
  if (!app->TryAcquire(n)) {
    tenant->bucket.Return(n);
    return Deny(config_.fair_share && tenant->debt > 0 ? tenant : nullptr,
                "app", app->RetryAfterMillis(n), throttled_app_);
  }

  // 3. Cluster bucket; roll tenant + app back on refusal.
  TokenBucket* cl = Shared(&clusters_, cluster, config_.cluster);
  if (!cl->TryAcquire(n)) {
    tenant->bucket.Return(n);
    app->Return(n);
    return Deny(config_.fair_share && tenant->debt > 0 ? tenant : nullptr,
                "cluster", cl->RetryAfterMillis(n), throttled_cluster_);
  }

  admitted_->Increment();
  return admit;
}

core::AdmissionDecision AdmissionController::AdmitDispatch(
    const ck::DatabaseId& db_id, const std::string& cluster, int64_t cost) {
  (void)cluster;
  core::AdmissionDecision admit;
  if (!config_.enabled || config_.dispatch_tenant.rate_per_sec <= 0) {
    return admit;
  }
  const double n = static_cast<double>(std::max<int64_t>(1, cost));

  std::lock_guard<std::mutex> lock(mu_);
  TenantState* tenant = Tenant(db_id.ToString());
  if (!tenant->dispatch_bucket.TryAcquire(n)) {
    core::AdmissionDecision d;
    // Dispatch refusals always throttle (the item requeues); shedding
    // dequeued work would drop it.
    d.outcome = core::AdmissionDecision::Outcome::kThrottle;
    d.level = "tenant";
    d.retry_after_millis =
        std::min(tenant->dispatch_bucket.RetryAfterMillis(n),
                 config_.max_retry_after_millis);
    dispatch_throttled_->Increment();
    return d;
  }
  dispatch_admitted_->Increment();
  return admit;
}

double AdmissionController::DebtOf(const std::string& tenant_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_key);
  return it == tenants_.end() ? 0.0 : it->second.debt;
}

}  // namespace quick::control
