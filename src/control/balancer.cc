#include "control/balancer.h"

#include <vector>

#include "fdb/retry.h"
#include "quick/pointer.h"

namespace quick::control {

TenantBalancer::TenantBalancer(core::Quick* quick, BalancerConfig config,
                               MetricsRegistry* registry)
    : quick_(quick),
      ck_(quick->cloudkit()),
      config_(config),
      moves_started_(registry->GetCounter("quick.balancer.moves_started")),
      moves_completed_(
          registry->GetCounter("quick.balancer.moves_completed")),
      moves_aborted_(registry->GetCounter("quick.balancer.moves_aborted")),
      moves_resumed_(registry->GetCounter("quick.balancer.moves_resumed")),
      catchup_rounds_run_(
          registry->GetCounter("quick.balancer.catchup_rounds")),
      drain_waits_(registry->GetCounter("quick.balancer.drain_waits")),
      zombie_requeues_(
          registry->GetCounter("quick.balancer.zombie_requeues")) {}

Result<std::optional<TenantBalancer::FoundState>> TenantBalancer::FindState(
    const ck::DatabaseId& db_id) {
  const std::string key = ck::MoveState::Key(db_id);
  for (const std::string& name : ck_->clusters()->names()) {
    fdb::Database* cluster = ck_->clusters()->Get(name);
    std::optional<ck::MoveState> found;
    Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      QUICK_ASSIGN_OR_RETURN(std::optional<std::string> raw,
                             txn.Get(key, /*snapshot=*/true));
      found = raw.has_value() ? ck::MoveState::Decode(*raw) : std::nullopt;
      return Status::OK();
    });
    QUICK_RETURN_IF_ERROR(st);
    if (found.has_value()) {
      return std::optional<FoundState>(FoundState{name, *found});
    }
  }
  return std::optional<FoundState>(std::nullopt);
}

Status TenantBalancer::WriteState(const std::string& cluster,
                                  const ck::DatabaseId& db_id,
                                  const ck::MoveState& state) {
  fdb::Database* db = ck_->clusters()->Get(cluster);
  return fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
    txn.Set(ck::MoveState::Key(db_id), state.Encode());
    return Status::OK();
  });
}

Status TenantBalancer::ClearState(const std::string& cluster,
                                  const ck::DatabaseId& db_id) {
  fdb::Database* db = ck_->clusters()->Get(cluster);
  return fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
    txn.Clear(ck::MoveState::Key(db_id));
    return Status::OK();
  });
}

Status TenantBalancer::ClearDestData(const ck::DatabaseId& db_id,
                                     const std::string& dest) {
  fdb::Database* db = ck_->clusters()->Get(dest);
  if (db == nullptr) return Status::InvalidArgument("unknown cluster " + dest);
  const KeyRange range = ck::CloudKitService::DatabaseSubspace(db_id).Range();
  return fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
    txn.ClearRange(range);
    return Status::OK();
  });
}

Result<MovePhase> TenantBalancer::Phase(const ck::DatabaseId& db_id) {
  QUICK_ASSIGN_OR_RETURN(std::optional<FoundState> found, FindState(db_id));
  if (!found.has_value()) return MovePhase::kIdle;
  switch (found->state.phase) {
    case ck::MoveState::kCopying:
      return MovePhase::kCopying;
    case ck::MoveState::kSealed:
      return MovePhase::kSealed;
    case ck::MoveState::kFlipped:
      return MovePhase::kFlipped;
  }
  return Status::Internal("corrupt move state");
}

Result<MovePhase> TenantBalancer::Step(const ck::DatabaseId& db_id,
                                       const std::string& dest_cluster) {
  const std::string& zone_name = quick_->config().queue_zone_name;
  const bool fifo = quick_->config().fifo_tenant_zones;
  QUICK_ASSIGN_OR_RETURN(std::optional<FoundState> found, FindState(db_id));

  // --- kIdle -> kCopying: validate, persist state, bulk copy. ---
  if (!found.has_value()) {
    if (db_id.kind == ck::DatabaseKind::kCluster) {
      return Status::InvalidArgument("ClusterDBs are pinned and cannot move");
    }
    const std::optional<std::string> src = ck_->placement()->Get(db_id);
    if (!src.has_value()) {
      return Status::NotFound("database " + db_id.ToString() + " not placed");
    }
    if (ck_->clusters()->Get(dest_cluster) == nullptr) {
      return Status::InvalidArgument("unknown cluster " + dest_cluster);
    }
    if (*src == dest_cluster) return MovePhase::kDone;
    ck::MoveState state;
    state.phase = ck::MoveState::kCopying;
    state.dest_cluster = dest_cluster;
    QUICK_RETURN_IF_ERROR(WriteState(*src, db_id, state));
    moves_started_->Increment();
    QUICK_RETURN_IF_ERROR(ck_->CopyDatabaseData(db_id, dest_cluster));
    return MovePhase::kCopying;
  }

  const std::string src = found->cluster;
  ck::MoveState state = found->state;
  const std::string dest = state.dest_cluster;
  fdb::Database* src_db = ck_->clusters()->Get(src);

  // --- kCopying: catch-up rounds, then seal. ---
  if (state.phase == ck::MoveState::kCopying) {
    if (state.catchup_rounds < config_.catchup_rounds) {
      // Re-copy over a cleared destination: the source changed while the
      // previous round ran, and deletes must not survive the overlay.
      QUICK_RETURN_IF_ERROR(ClearDestData(db_id, dest));
      QUICK_RETURN_IF_ERROR(ck_->CopyDatabaseData(db_id, dest));
      state.catchup_rounds++;
      catchup_rounds_run_->Increment();
      QUICK_RETURN_IF_ERROR(WriteState(src, db_id, state));
      return MovePhase::kCopying;
    }
    // Seal: raise the fence and take the source pointer off Q_C in one
    // transaction. Any enqueue/dequeue serialized after this commit sees
    // the fence (or conflicted with it and retries into seeing it).
    const core::Pointer pointer{db_id, zone_name};
    state.phase = ck::MoveState::kSealed;
    QUICK_RETURN_IF_ERROR(
        fdb::RunTransaction(src_db, [&](fdb::Transaction& txn) {
          txn.Set(ck::MoveState::Key(db_id), state.Encode());
          const ck::DatabaseRef src_cluster_db = ck_->OpenClusterDb(src);
          ck::QueueZone top_zone =
              quick_->OpenTopZoneFor(src_cluster_db, pointer.Key(), &txn);
          Status c = top_zone.Complete(pointer.Key());
          if (c.IsNotFound()) return Status::OK();
          return c;
        }));
    return MovePhase::kSealed;
  }

  // --- kSealed: drain leases, then the exact final copy + flip. ---
  if (state.phase == ck::MoveState::kSealed) {
    // Crash window: the flip committed but the state update did not.
    // Placement already names the destination — the destination is LIVE;
    // never touch its data again, just advance the state machine.
    if (ck_->placement()->Get(db_id) == dest) {
      state.phase = ck::MoveState::kFlipped;
      QUICK_RETURN_IF_ERROR(WriteState(src, db_id, state));
      return MovePhase::kFlipped;
    }

    const tup::Subspace zone_subspace =
        ck::CloudKitService::DatabaseSubspace(db_id).Sub("z").Sub(zone_name);
    const int64_t now = quick_->clock()->NowMillis();
    std::vector<std::string> zombies;
    bool live_leases = false;
    QUICK_RETURN_IF_ERROR(
        fdb::RunTransaction(src_db, [&](fdb::Transaction& txn) {
          zombies.clear();
          live_leases = false;
          ck::QueueZone zone(&txn, zone_subspace, quick_->clock(), fifo);
          QUICK_ASSIGN_OR_RETURN(std::vector<ck::QueuedItem> all,
                                 zone.SnapshotAll());
          for (const ck::QueuedItem& item : all) {
            if (!item.leased()) continue;
            if (item.vesting_time <= now) {
              zombies.push_back(item.id);  // expired lease: supersede it
            } else {
              live_leases = true;  // in-flight execution: wait it out
            }
          }
          return Status::OK();
        }));

    if (!zombies.empty()) {
      // Supersede expired leases with an unfenced requeue: the zombie
      // holder's eventual complete/requeue/quarantine then fails
      // kLeaseLost, and the item becomes a plain unleased item the fence
      // protects. (The crashed consumer's execution may already have run:
      // at-least-once, exactly as a non-migrating lease expiry behaves.)
      QUICK_RETURN_IF_ERROR(
          fdb::RunTransaction(src_db, [&](fdb::Transaction& txn) {
            ck::QueueZone zone(&txn, zone_subspace, quick_->clock(), fifo);
            for (const std::string& id : zombies) {
              Status st = zone.Requeue(id, 0, /*increment_error_count=*/false);
              if (!st.ok() && !st.IsNotFound()) return st;
            }
            return Status::OK();
          }));
      zombie_requeues_->Increment(static_cast<int64_t>(zombies.size()));
      return MovePhase::kSealed;
    }
    if (live_leases) {
      drain_waits_->Increment();
      return MovePhase::kSealed;
    }

    // Quiescent: enqueues and dequeues are fenced, no leases remain, and
    // every lease-fenced transition by a former holder fails — the zone
    // (and its dead-letter store, which only changes through the same
    // fenced paths) cannot change anymore. The copy below is exact.
    QUICK_RETURN_IF_ERROR(ClearDestData(db_id, dest));
    QUICK_RETURN_IF_ERROR(ck_->CopyDatabaseData(db_id, dest));

    // Destination pointer iff the queue carries work (idempotent: a crash
    // retry overwrites the same pointer record by id).
    const core::Pointer pointer{db_id, zone_name};
    fdb::Database* dst_db = ck_->clusters()->Get(dest);
    QUICK_RETURN_IF_ERROR(
        fdb::RunTransaction(dst_db, [&](fdb::Transaction& txn) {
          ck::QueueZone zone(&txn, zone_subspace, quick_->clock(), fifo);
          QUICK_ASSIGN_OR_RETURN(int64_t count, zone.Count());
          if (count <= 0) return Status::OK();
          const ck::DatabaseRef dst_cluster_db = ck_->OpenClusterDb(dest);
          ck::QueueZone top_zone =
              quick_->OpenTopZoneFor(dst_cluster_db, pointer.Key(), &txn);
          ck::QueuedItem pointer_item = pointer.ToItem();
          pointer_item.last_active_time = quick_->clock()->NowMillis();
          return top_zone.Enqueue(std::move(pointer_item), /*delay=*/0)
              .status();
        }));

    // The flip. The sealed fence satisfies CommitMove's queued-work guard.
    QUICK_RETURN_IF_ERROR(ck_->CommitMove(db_id, dest, zone_name));
    state.phase = ck::MoveState::kFlipped;
    QUICK_RETURN_IF_ERROR(WriteState(src, db_id, state));
    return MovePhase::kFlipped;
  }

  // --- kFlipped -> kDone: delete source data, lower the fence. ---
  QUICK_RETURN_IF_ERROR(ck_->DeleteDatabaseData(db_id, src));
  QUICK_RETURN_IF_ERROR(ClearState(src, db_id));
  moves_completed_->Increment();
  return MovePhase::kDone;
}

Status TenantBalancer::MoveTenant(const ck::DatabaseId& db_id,
                                  const std::string& dest_cluster) {
  int64_t drained_millis = 0;
  MovePhase prev = MovePhase::kIdle;
  while (true) {
    Result<MovePhase> phase = Step(db_id, dest_cluster);
    QUICK_RETURN_IF_ERROR(phase.status());
    if (*phase == MovePhase::kDone) return Status::OK();
    if (*phase == MovePhase::kSealed && prev == MovePhase::kSealed) {
      // Waiting on lease drain; give holders time to finish or expire.
      if (drained_millis >= config_.drain_timeout_millis) {
        Status abort = Abort(db_id);
        return Status::TimedOut(
            "lease drain did not complete within " +
            std::to_string(config_.drain_timeout_millis) + "ms moving " +
            db_id.ToString() + " (abort: " + abort.ToString() + ")");
      }
      quick_->clock()->SleepMillis(config_.drain_poll_millis);
      drained_millis += config_.drain_poll_millis;
    }
    prev = *phase;
  }
}

Status TenantBalancer::Resume(const ck::DatabaseId& db_id) {
  QUICK_ASSIGN_OR_RETURN(std::optional<FoundState> found, FindState(db_id));
  if (!found.has_value()) {
    return Status::NotFound("no move in flight for " + db_id.ToString());
  }
  moves_resumed_->Increment();
  return MoveTenant(db_id, found->state.dest_cluster);
}

Status TenantBalancer::Abort(const ck::DatabaseId& db_id) {
  QUICK_ASSIGN_OR_RETURN(std::optional<FoundState> found, FindState(db_id));
  if (!found.has_value()) {
    return Status::NotFound("no move in flight for " + db_id.ToString());
  }
  if (found->state.phase >= ck::MoveState::kFlipped ||
      ck_->placement()->Get(db_id) == found->state.dest_cluster) {
    return Status::FailedPrecondition(
        "move already flipped; run Resume() forward instead");
  }
  const std::string& zone_name = quick_->config().queue_zone_name;
  const bool fifo = quick_->config().fifo_tenant_zones;
  const std::string src = found->cluster;
  fdb::Database* src_db = ck_->clusters()->Get(src);

  // Restore the source: lower the fence and re-create the Q_C pointer
  // when the zone still carries work (it was removed at the seal), in one
  // transaction so traffic resumes atomically.
  const core::Pointer pointer{db_id, zone_name};
  const tup::Subspace zone_subspace =
      ck::CloudKitService::DatabaseSubspace(db_id).Sub("z").Sub(zone_name);
  QUICK_RETURN_IF_ERROR(
      fdb::RunTransaction(src_db, [&](fdb::Transaction& txn) {
        txn.Clear(ck::MoveState::Key(db_id));
        if (found->state.phase < ck::MoveState::kSealed) {
          return Status::OK();  // pointer was never removed
        }
        ck::QueueZone zone(&txn, zone_subspace, quick_->clock(), fifo);
        QUICK_ASSIGN_OR_RETURN(int64_t count, zone.Count());
        if (count <= 0) return Status::OK();
        const ck::DatabaseRef src_cluster_db = ck_->OpenClusterDb(src);
        ck::QueueZone top_zone =
            quick_->OpenTopZoneFor(src_cluster_db, pointer.Key(), &txn);
        ck::QueuedItem pointer_item = pointer.ToItem();
        pointer_item.last_active_time = quick_->clock()->NowMillis();
        return top_zone.Enqueue(std::move(pointer_item), /*delay=*/0)
            .status();
      }));
  // Discard the partial destination copy.
  QUICK_RETURN_IF_ERROR(ClearDestData(db_id, found->state.dest_cluster));
  moves_aborted_->Increment();
  return Status::OK();
}

Result<bool> TenantBalancer::RunPolicyOnce(LoadMonitor* monitor) {
  std::optional<RebalancePlan> plan = monitor->SuggestRebalance();
  if (!plan.has_value()) return false;
  QUICK_RETURN_IF_ERROR(MoveTenant(plan->db_id, plan->dest_cluster));
  return true;
}

}  // namespace quick::control
