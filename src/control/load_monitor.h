#ifndef QUICK_CONTROL_LOAD_MONITOR_H_
#define QUICK_CONTROL_LOAD_MONITOR_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloudkit/service.h"
#include "common/clock.h"
#include "common/metrics.h"

namespace quick::control {

struct LoadMonitorConfig {
  /// How many hot tenants HotTenants() reports.
  int top_k = 5;
  /// EWMA smoothing for cluster load scores (1.0 = latest sample only).
  double ewma_alpha = 0.5;
  /// Load-score formula weights (see ClusterLoad::score):
  ///   score = ewma(rate_weight * enqueue_rate
  ///               + backlog_weight * max(0, enqueue_rate - dequeue_rate)
  ///               + breaker_weight * breaker_trouble)
  double backlog_weight = 1.0;
  double rate_weight = 1.0;
  double breaker_weight = 100.0;
  /// SuggestRebalance() proposes a move only when the hottest and coolest
  /// clusters' scores differ by at least this much.
  double rebalance_min_gap = 50.0;
};

/// Per-tenant activity over the last Tick interval.
struct TenantLoad {
  ck::DatabaseId db_id;
  std::string cluster;
  double enqueue_rate = 0;  // items/sec
  double dequeue_rate = 0;
  double error_rate = 0;
};

/// Per-cluster folded load.
struct ClusterLoad {
  std::string cluster;
  double enqueue_rate = 0;
  double dequeue_rate = 0;
  /// Circuit-breaker opened/reopened events observed this interval.
  int64_t breaker_events = 0;
  /// EWMA load score (see LoadMonitorConfig for the formula).
  double score = 0;
};

/// One (cluster, shard) top-level backlog sample (DESIGN.md §12).
struct ShardBacklogSample {
  std::string cluster;
  int shard = 0;
  int64_t entries = 0;
};

/// A proposed tenant move (hot tenant off the hottest cluster onto the
/// coolest one).
struct RebalancePlan {
  ck::DatabaseId db_id;
  std::string source_cluster;
  std::string dest_cluster;
  double score_gap = 0;
};

/// Folds MetricsRegistry snapshots — the per-tenant ck.tenant.* counters,
/// circuit-breaker quick.breaker.* events — and placement into cluster
/// load scores and a top-K hot-tenant list. Call Tick() periodically; the
/// first call establishes the baseline. Reads are non-destructive: the
/// monitor keeps its own last-value map and never resets the registry.
///
/// Not thread-safe; drive from one control thread.
class LoadMonitor {
 public:
  LoadMonitor(ck::CloudKitService* ck, LoadMonitorConfig config,
              Clock* clock,
              MetricsRegistry* registry = MetricsRegistry::Default());

  /// Ingests one snapshot: computes per-tenant rates over the interval
  /// since the previous Tick, refreshes cluster scores, and publishes
  /// them as quick.load.score.<cluster> gauges (scaled x1000).
  void Tick();

  /// Cluster loads after the latest Tick, sorted by descending score.
  std::vector<ClusterLoad> ClusterLoads() const;

  /// Top-K tenants by enqueue rate over the last interval (ClusterDBs
  /// excluded — local work is pinned and cannot rebalance).
  std::vector<TenantLoad> HotTenants() const;

  /// Proposes moving the hottest tenant of the hottest cluster to the
  /// coolest cluster, when the score gap warrants it; nullopt otherwise.
  std::optional<RebalancePlan> SuggestRebalance() const;

  const LoadMonitorConfig& config() const { return config_; }

  /// Attaches a per-shard top-level backlog sampler (typically wrapping
  /// QuickAdmin::PublishShardBacklog's underlying reads). When set, every
  /// Tick() publishes ck.zone.top_backlog.<cluster>.<shard> gauges from
  /// the sample and refreshes ShardImbalance(). Call during setup.
  void SetShardBacklogProbe(
      std::function<std::vector<ShardBacklogSample>()> probe) {
    shard_probe_ = std::move(probe);
  }

  /// Per-cluster stripe skew from the last Tick: max shard backlog over
  /// mean shard backlog (1.0 = perfectly balanced; empty clusters report
  /// 1.0). Clusters absent from the last probe are absent here.
  std::map<std::string, double> ShardImbalance() const { return imbalance_; }

 private:
  double Delta(const std::string& counter_name, int64_t value);

  ck::CloudKitService* ck_;
  LoadMonitorConfig config_;
  Clock* clock_;
  MetricsRegistry* registry_;

  int64_t last_tick_micros_ = 0;
  bool have_baseline_ = false;
  std::map<std::string, int64_t> last_values_;
  std::vector<TenantLoad> tenants_;
  std::map<std::string, ClusterLoad> clusters_;
  std::function<std::vector<ShardBacklogSample>()> shard_probe_;
  std::map<std::string, double> imbalance_;
};

/// Parses a DatabaseId back out of its ToString() form
/// ("app/private/user" | "app/public" | "app/cluster/name"); nullopt for
/// anything else. Exposed for tests.
std::optional<ck::DatabaseId> ParseTenantKey(const std::string& key);

}  // namespace quick::control

#endif  // QUICK_CONTROL_LOAD_MONITOR_H_
