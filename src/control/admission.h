#ifndef QUICK_CONTROL_ADMISSION_H_
#define QUICK_CONTROL_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/token_bucket.h"
#include "quick/admission_gate.h"

namespace quick::control {

/// Rate/burst pair for one hierarchy level. rate_per_sec <= 0 disables
/// the level (unlimited).
struct AdmissionLimits {
  double rate_per_sec = 0;
  double burst = 0;
};

struct AdmissionConfig {
  bool enabled = true;
  /// Enqueue-side hierarchy: tenant -> app -> cluster. A request must pass
  /// all three; outer refusals refund the inner tokens already taken.
  AdmissionLimits tenant{100, 200};
  AdmissionLimits app{1000, 2000};
  AdmissionLimits cluster{5000, 10000};
  /// Dispatch-side per-tenant limit (consumer worker-pool share). Disabled
  /// by default: dispatch gating pushes already-queued work back, which
  /// only helps when one tenant floods the pool.
  AdmissionLimits dispatch_tenant{0, 0};
  /// Debt-based fair share: a refused tenant accrues debt that (a) extends
  /// its retry-after hint, so persistent over-senders wait longer than
  /// polite ones, and (b) escalates its refusals to shed once the raw
  /// retry-after passes shed_after_millis — the noisy tenant degrades
  /// itself, never its neighbors.
  bool fair_share = true;
  int64_t shed_after_millis = 5000;
  /// Clamp on the retry-after hint surfaced to clients.
  int64_t max_retry_after_millis = 30000;
};

/// Hierarchical token-bucket admission controller (the enqueue- and
/// dispatch-path gate of the control plane). Decision order and neighbor
/// isolation:
///
///   1. The TENANT bucket is charged first. A tenant-level refusal never
///      touches the app or cluster buckets — a hot tenant cannot consume
///      shared capacity by being refused.
///   2. The APP bucket next; on refusal the tenant's tokens are returned.
///   3. The CLUSTER bucket last; on refusal tenant+app tokens return.
///
/// Every decision is counted under quick.admission.*; DebtOf() exposes a
/// tenant's current debt for tests and operators.
///
/// Thread-safe: one mutex serializes decisions, so the hierarchy is
/// charged atomically. Buckets and debt state are created lazily per
/// tenant/app/cluster key.
class AdmissionController : public core::AdmissionGate {
 public:
  AdmissionController(AdmissionConfig config, Clock* clock,
                      MetricsRegistry* registry = MetricsRegistry::Default());

  core::AdmissionDecision AdmitEnqueue(const ck::DatabaseId& db_id,
                                       const std::string& cluster,
                                       int64_t cost) override;
  core::AdmissionDecision AdmitDispatch(const ck::DatabaseId& db_id,
                                        const std::string& cluster,
                                        int64_t cost) override;

  /// Current fair-share debt of a tenant (keyed by DatabaseId::ToString()).
  double DebtOf(const std::string& tenant_key) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  struct TenantState {
    TokenBucket bucket;
    TokenBucket dispatch_bucket;
    double debt = 0;
    int64_t last_decay_micros = 0;
  };

  TenantState* Tenant(const std::string& key);        // caller holds mu_
  TokenBucket* Shared(std::unordered_map<std::string, TokenBucket>* map,
                      const std::string& key,
                      const AdmissionLimits& limits);  // caller holds mu_
  void DecayDebt(TenantState* t);                      // caller holds mu_
  core::AdmissionDecision Deny(TenantState* t, const char* level,
                               int64_t raw_retry_millis, Counter* counter);

  AdmissionConfig config_;
  Clock* clock_;
  MetricsRegistry* registry_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, TenantState> tenants_;
  std::unordered_map<std::string, TokenBucket> apps_;
  std::unordered_map<std::string, TokenBucket> clusters_;

  // quick.admission.* decision counters, resolved once.
  Counter* admitted_;
  Counter* throttled_tenant_;
  Counter* throttled_app_;
  Counter* throttled_cluster_;
  Counter* shed_;
  Counter* dispatch_admitted_;
  Counter* dispatch_throttled_;
};

}  // namespace quick::control

#endif  // QUICK_CONTROL_ADMISSION_H_
