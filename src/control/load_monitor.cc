#include "control/load_monitor.h"

#include <algorithm>

#include "quick/tenant_metrics.h"

namespace quick::control {

namespace {

bool ConsumePrefix(const std::string& s, const char* prefix,
                   std::string* rest) {
  const size_t n = std::string(prefix).size();
  if (s.compare(0, n, prefix) != 0) return false;
  *rest = s.substr(n);
  return true;
}

}  // namespace

std::optional<ck::DatabaseId> ParseTenantKey(const std::string& key) {
  const size_t slash = key.find('/');
  if (slash == std::string::npos || slash == 0) return std::nullopt;
  const std::string app = key.substr(0, slash);
  const std::string rest = key.substr(slash + 1);
  if (rest == "public") return ck::DatabaseId::Public(app);
  if (rest.compare(0, 8, "private/") == 0) {
    return ck::DatabaseId::Private(app, rest.substr(8));
  }
  if (rest.compare(0, 8, "cluster/") == 0) {
    ck::DatabaseId id;
    id.app = app;
    id.user = rest.substr(8);
    id.kind = ck::DatabaseKind::kCluster;
    return id;
  }
  return std::nullopt;
}

LoadMonitor::LoadMonitor(ck::CloudKitService* ck, LoadMonitorConfig config,
                         Clock* clock, MetricsRegistry* registry)
    : ck_(ck), config_(config), clock_(clock), registry_(registry) {}

double LoadMonitor::Delta(const std::string& counter_name, int64_t value) {
  auto it = last_values_.find(counter_name);
  const int64_t prev = it == last_values_.end() ? 0 : it->second;
  last_values_[counter_name] = value;
  // A brand-new counter's whole value counts as this interval's delta only
  // once a baseline exists; the first Tick just records.
  if (!have_baseline_ && it == last_values_.end()) return 0;
  return static_cast<double>(value - prev);
}

void LoadMonitor::Tick() {
  const int64_t now = clock_->NowMicros();
  const double elapsed_sec =
      last_tick_micros_ > 0 ? (now - last_tick_micros_) * 1e-6 : 0.0;
  const MetricsSnapshot snap = registry_->Snapshot();

  // Per-tenant deltas keyed by the ck.tenant.* name suffix.
  struct Deltas {
    double enq = 0, deq = 0, err = 0;
  };
  std::map<std::string, Deltas> by_tenant;
  std::map<std::string, int64_t> breaker_by_cluster;
  for (const auto& [name, value] : snap.counters) {
    std::string rest;
    if (ConsumePrefix(name, core::TenantMetrics::kEnqueuedPrefix, &rest)) {
      by_tenant[rest].enq = Delta(name, value);
    } else if (ConsumePrefix(name, core::TenantMetrics::kDequeuedPrefix,
                             &rest)) {
      by_tenant[rest].deq = Delta(name, value);
    } else if (ConsumePrefix(name, core::TenantMetrics::kErrorsPrefix,
                             &rest)) {
      by_tenant[rest].err = Delta(name, value);
    } else if (ConsumePrefix(name, "quick.breaker.", &rest)) {
      // quick.breaker.<cluster>.{opened,reopened,...}: opened/reopened
      // deltas flag a cluster in trouble this interval.
      const size_t dot = rest.rfind('.');
      if (dot == std::string::npos) continue;
      const std::string event = rest.substr(dot + 1);
      if (event != "opened" && event != "reopened") continue;
      breaker_by_cluster[rest.substr(0, dot)] +=
          static_cast<int64_t>(Delta(name, value));
    }
  }

  // Fold tenant rates into clusters via current placement.
  tenants_.clear();
  std::map<std::string, ClusterLoad> fresh;
  for (const std::string& cluster : ck_->clusters()->names()) {
    fresh[cluster].cluster = cluster;
  }
  const double div = elapsed_sec > 0 ? elapsed_sec : 1.0;
  for (const auto& [key, d] : by_tenant) {
    std::optional<ck::DatabaseId> id = ParseTenantKey(key);
    if (!id.has_value()) continue;
    TenantLoad t;
    t.db_id = *id;
    t.cluster = id->kind == ck::DatabaseKind::kCluster
                    ? id->user
                    : ck_->placement()->Get(*id).value_or("");
    t.enqueue_rate = d.enq / div;
    t.dequeue_rate = d.deq / div;
    t.error_rate = d.err / div;
    ClusterLoad& c = fresh[t.cluster];
    c.cluster = t.cluster;
    c.enqueue_rate += t.enqueue_rate;
    c.dequeue_rate += t.dequeue_rate;
    tenants_.push_back(std::move(t));
  }
  for (const auto& [cluster, events] : breaker_by_cluster) {
    ClusterLoad& c = fresh[cluster];
    c.cluster = cluster;
    c.breaker_events += events;
  }

  // EWMA the instantaneous sample into the running score and publish.
  for (auto& [name, c] : fresh) {
    const double sample =
        config_.rate_weight * c.enqueue_rate +
        config_.backlog_weight *
            std::max(0.0, c.enqueue_rate - c.dequeue_rate) +
        config_.breaker_weight * static_cast<double>(c.breaker_events);
    auto prev = clusters_.find(name);
    const double prev_score =
        prev == clusters_.end() ? 0.0 : prev->second.score;
    c.score = have_baseline_
                  ? config_.ewma_alpha * sample +
                        (1.0 - config_.ewma_alpha) * prev_score
                  : sample;
    registry_->GetGauge("quick.load.score." + name)
        ->Set(static_cast<int64_t>(c.score * 1000.0));
  }
  clusters_ = std::move(fresh);

  // Per-shard top-level backlog (DESIGN.md §12): publish the gauges and
  // fold each cluster's max/mean into the stripe-skew view.
  if (shard_probe_) {
    struct Agg {
      int64_t max = 0, total = 0;
      int shards = 0;
    };
    std::map<std::string, Agg> agg;
    for (const ShardBacklogSample& s : shard_probe_()) {
      registry_
          ->GetGauge("ck.zone.top_backlog." + s.cluster + "." +
                     std::to_string(s.shard))
          ->Set(s.entries);
      Agg& a = agg[s.cluster];
      a.max = std::max(a.max, s.entries);
      a.total += s.entries;
      ++a.shards;
    }
    imbalance_.clear();
    for (const auto& [cluster, a] : agg) {
      const double mean =
          a.shards > 0 ? static_cast<double>(a.total) / a.shards : 0.0;
      imbalance_[cluster] =
          mean > 0.0 ? static_cast<double>(a.max) / mean : 1.0;
    }
  }

  last_tick_micros_ = now;
  have_baseline_ = true;
}

std::vector<ClusterLoad> LoadMonitor::ClusterLoads() const {
  std::vector<ClusterLoad> out;
  out.reserve(clusters_.size());
  for (const auto& [name, c] : clusters_) out.push_back(c);
  std::sort(out.begin(), out.end(),
            [](const ClusterLoad& a, const ClusterLoad& b) {
              return a.score > b.score;
            });
  return out;
}

std::vector<TenantLoad> LoadMonitor::HotTenants() const {
  std::vector<TenantLoad> out;
  for (const TenantLoad& t : tenants_) {
    if (t.db_id.kind == ck::DatabaseKind::kCluster) continue;
    // Quiet this interval (e.g. the baseline tick) is not hot.
    if (t.enqueue_rate <= 0 && t.dequeue_rate <= 0 && t.error_rate <= 0) {
      continue;
    }
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const TenantLoad& a, const TenantLoad& b) {
              return a.enqueue_rate > b.enqueue_rate;
            });
  if (static_cast<int>(out.size()) > config_.top_k) {
    out.resize(static_cast<size_t>(config_.top_k));
  }
  return out;
}

std::optional<RebalancePlan> LoadMonitor::SuggestRebalance() const {
  const std::vector<ClusterLoad> loads = ClusterLoads();
  if (loads.size() < 2) return std::nullopt;
  const ClusterLoad& hottest = loads.front();
  const ClusterLoad& coolest = loads.back();
  const double gap = hottest.score - coolest.score;
  if (gap < config_.rebalance_min_gap) return std::nullopt;
  // The hottest movable tenant currently homed on the hottest cluster.
  for (const TenantLoad& t : HotTenants()) {
    if (t.cluster != hottest.cluster) continue;
    RebalancePlan plan;
    plan.db_id = t.db_id;
    plan.source_cluster = hottest.cluster;
    plan.dest_cluster = coolest.cluster;
    plan.score_gap = gap;
    return plan;
  }
  return std::nullopt;
}

}  // namespace quick::control
