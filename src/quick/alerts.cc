#include "quick/alerts.h"

#include <sstream>

namespace quick::core {

namespace {
const char* KindName(Alert::Kind kind) {
  switch (kind) {
    case Alert::Kind::kRepeatedFailures:
      return "REPEATED_FAILURES";
    case Alert::Kind::kDroppedAfterExhaustion:
      return "DROPPED_AFTER_EXHAUSTION";
    case Alert::Kind::kPermanentFailure:
      return "PERMANENT_FAILURE";
    case Alert::Kind::kUnknownJobType:
      return "UNKNOWN_JOB_TYPE";
    case Alert::Kind::kQuarantined:
      return "QUARANTINED";
    case Alert::Kind::kBreakerOpened:
      return "BREAKER_OPENED";
    case Alert::Kind::kBreakerClosed:
      return "BREAKER_CLOSED";
    case Alert::Kind::kReplicaDivergence:
      return "REPLICA_DIVERGENCE";
    case Alert::Kind::kReplicaPromoted:
      return "REPLICA_PROMOTED";
    case Alert::Kind::kPromotionRefused:
      return "PROMOTION_REFUSED";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Alert::ToString() const {
  std::ostringstream os;
  os << KindName(kind);
  if (!cluster.empty()) os << " cluster=" << cluster;
  os << " db=" << db_id.ToString() << " zone=" << zone << " item=" << item_id
     << " type=" << job_type << " errors=" << error_count;
  if (!detail.empty()) os << " detail=" << detail;
  return os.str();
}

}  // namespace quick::core
