#ifndef QUICK_QUICK_CLUSTER_HEALTH_H_
#define QUICK_QUICK_CLUSTER_HEALTH_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "quick/alerts.h"
#include "quick/config.h"

namespace quick::core {

/// Circuit breaker over one downstream cluster. Standard three-state
/// machine:
///
///   closed ──(failure_threshold consecutive infra failures)──▶ open
///   open ──(open duration elapses; next request is the probe)──▶ half-open
///   half-open ──(success_threshold successes)──▶ closed
///   half-open ──(any failure)──▶ open, with exponentially longer duration
///
/// The open duration grows via RetryBackoff and resets when the breaker
/// closes. Not thread-safe on its own; ClusterHealth serializes access.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// State-machine transition triggered by an observation; the caller
  /// raises alerts / bumps metrics on kOpened and kClosed.
  enum class Transition { kNone, kOpened, kReopened, kClosed };

  CircuitBreaker(const CircuitBreakerConfig& config, Clock* clock)
      : config_(config),
        clock_(clock),
        open_backoff_(config.open_initial_millis, config.open_max_millis,
                      config.open_backoff_multiplier) {}

  /// True when a request against the cluster may proceed. While open,
  /// returns false until the open duration has elapsed, then moves to
  /// half-open and lets probes through.
  bool AllowRequest() {
    switch (state_) {
      case State::kClosed:
      case State::kHalfOpen:
        return true;
      case State::kOpen:
        if (clock_->NowMillis() >= open_until_millis_) {
          state_ = State::kHalfOpen;
          probe_successes_ = 0;
          return true;
        }
        return false;
    }
    return true;
  }

  Transition RecordSuccess() {
    switch (state_) {
      case State::kClosed:
        consecutive_failures_ = 0;
        return Transition::kNone;
      case State::kHalfOpen:
        if (++probe_successes_ >= config_.success_threshold) {
          state_ = State::kClosed;
          consecutive_failures_ = 0;
          open_backoff_.Reset();
          return Transition::kClosed;
        }
        return Transition::kNone;
      case State::kOpen:
        // A request that started before the breaker opened finished fine;
        // the breaker stays open until a scheduled probe says otherwise.
        return Transition::kNone;
    }
    return Transition::kNone;
  }

  Transition RecordFailure() {
    switch (state_) {
      case State::kClosed:
        if (++consecutive_failures_ >= config_.failure_threshold) {
          Open();
          return Transition::kOpened;
        }
        return Transition::kNone;
      case State::kHalfOpen:
        Open();
        return Transition::kReopened;
      case State::kOpen:
        return Transition::kNone;
    }
    return Transition::kNone;
  }

  State state() const { return state_; }
  int64_t open_until_millis() const { return open_until_millis_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  void Open() {
    state_ = State::kOpen;
    open_until_millis_ = clock_->NowMillis() + open_backoff_.NextDelayMillis();
    probe_successes_ = 0;
  }

  CircuitBreakerConfig config_;
  Clock* clock_;
  RetryBackoff open_backoff_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int64_t open_until_millis_ = 0;
};

/// Per-cluster health tracking for one consumer: a circuit breaker per
/// cluster, alert raising on open/close transitions, and breaker metrics
/// in the metrics registry (names: quick.breaker.<cluster>.{opened,
/// reopened, closed, skipped, probes}). Thread-safe; Scanner, Manager and
/// Worker threads all report through it.
class ClusterHealth {
 public:
  ClusterHealth(const CircuitBreakerConfig& config, Clock* clock,
                std::string consumer_id,
                MetricsRegistry* metrics = MetricsRegistry::Default())
      : config_(config),
        clock_(clock),
        consumer_id_(std::move(consumer_id)),
        metrics_(metrics) {}

  void SetAlertSink(AlertSink* sink) { alert_sink_ = sink; }

  /// True when the Scanner should skip this cluster this round (breaker
  /// open, probe not yet due). Returning false while open-circuit means the
  /// caller's next request is the half-open probe.
  bool ShouldSkip(const std::string& cluster);

  /// Classifies a transaction/scan outcome against `cluster` and feeds the
  /// breaker: OK resets it, infrastructure failures advance it, contention
  /// outcomes (conflicts, lost leases, not-found) are ignored.
  void Observe(const std::string& cluster, const Status& status);

  CircuitBreaker::State StateOf(const std::string& cluster) const;

  /// True for errors that indicate cluster trouble rather than normal
  /// inter-consumer contention: kUnavailable, kTimedOut (retry budget
  /// exhausted), kTransactionTooOld.
  static bool IsInfraFailure(const Status& status) {
    switch (status.code()) {
      case StatusCode::kUnavailable:
      case StatusCode::kTimedOut:
      case StatusCode::kTransactionTooOld:
        return true;
      default:
        return false;
    }
  }

 private:
  struct Entry {
    explicit Entry(const CircuitBreakerConfig& config, Clock* clock)
        : breaker(config, clock) {}
    CircuitBreaker breaker;
  };

  Entry* GetEntryLocked(const std::string& cluster);
  void RaiseTransitionAlert(const std::string& cluster,
                            CircuitBreaker::Transition transition,
                            const Status& status);
  Counter* BreakerCounter(const std::string& cluster, const char* event);

  CircuitBreakerConfig config_;
  Clock* clock_;
  std::string consumer_id_;
  MetricsRegistry* metrics_;
  AlertSink* alert_sink_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_CLUSTER_HEALTH_H_
