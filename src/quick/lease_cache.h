#ifndef QUICK_QUICK_LEASE_CACHE_H_
#define QUICK_QUICK_LEASE_CACHE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace quick::core {

/// TTL'd named leases on a shared in-memory object — the memcached
/// substitute used to elect, per top-level queue, the one Scanner that
/// processes pointers sequentially for tail-latency/no-starvation (§6
/// "Concurrency between consumers, fairness and leases").
class LeaseCache {
 public:
  explicit LeaseCache(Clock* clock) : clock_(clock) {}

  /// Acquires or renews `key` for `owner` with the given TTL. Returns true
  /// when `owner` now holds the lease (it was free, expired, or already
  /// owned by `owner`).
  bool TryAcquire(const std::string& key, const std::string& owner,
                  int64_t ttl_millis) {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = clock_->NowMillis();
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.expiry <= now ||
        it->second.owner == owner) {
      leases_[key] = {owner, now + ttl_millis};
      return true;
    }
    return false;
  }

  /// Releases `key` if held by `owner`.
  void Release(const std::string& key, const std::string& owner) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = leases_.find(key);
    if (it != leases_.end() && it->second.owner == owner) {
      leases_.erase(it);
    }
  }

  /// Current holder of `key`, or empty when free/expired.
  std::string Holder(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.expiry <= clock_->NowMillis()) {
      return "";
    }
    return it->second.owner;
  }

  /// Announces `member` as live in `group` for `ttl_millis` — the
  /// membership view striped scanners use to split a cluster's top-level
  /// shards among themselves (DESIGN.md §12). Refreshing is idempotent;
  /// a member that stops announcing drops out at TTL expiry.
  void Announce(const std::string& group, const std::string& member,
                int64_t ttl_millis) {
    std::lock_guard<std::mutex> lock(mu_);
    members_[group][member] = clock_->NowMillis() + ttl_millis;
  }

  /// Live (unexpired) members of `group`, sorted by name so every caller
  /// sees the same view and rendezvous hashing is deterministic. Expired
  /// entries are pruned as a side effect.
  std::vector<std::string> Members(const std::string& group) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> live;
    auto git = members_.find(group);
    if (git == members_.end()) return live;
    const int64_t now = clock_->NowMillis();
    for (auto it = git->second.begin(); it != git->second.end();) {
      if (it->second <= now) {
        it = git->second.erase(it);
      } else {
        live.push_back(it->first);
        ++it;
      }
    }
    return live;
  }

 private:
  struct Lease {
    std::string owner;
    int64_t expiry;
  };

  Clock* clock_;
  mutable std::mutex mu_;
  std::map<std::string, Lease> leases_;
  /// group -> member -> expiry.
  mutable std::map<std::string, std::map<std::string, int64_t>> members_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_LEASE_CACHE_H_
