#ifndef QUICK_QUICK_LEASE_CACHE_H_
#define QUICK_QUICK_LEASE_CACHE_H_

#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"

namespace quick::core {

/// TTL'd named leases on a shared in-memory object — the memcached
/// substitute used to elect, per top-level queue, the one Scanner that
/// processes pointers sequentially for tail-latency/no-starvation (§6
/// "Concurrency between consumers, fairness and leases").
class LeaseCache {
 public:
  explicit LeaseCache(Clock* clock) : clock_(clock) {}

  /// Acquires or renews `key` for `owner` with the given TTL. Returns true
  /// when `owner` now holds the lease (it was free, expired, or already
  /// owned by `owner`).
  bool TryAcquire(const std::string& key, const std::string& owner,
                  int64_t ttl_millis) {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = clock_->NowMillis();
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.expiry <= now ||
        it->second.owner == owner) {
      leases_[key] = {owner, now + ttl_millis};
      return true;
    }
    return false;
  }

  /// Releases `key` if held by `owner`.
  void Release(const std::string& key, const std::string& owner) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = leases_.find(key);
    if (it != leases_.end() && it->second.owner == owner) {
      leases_.erase(it);
    }
  }

  /// Current holder of `key`, or empty when free/expired.
  std::string Holder(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = leases_.find(key);
    if (it == leases_.end() || it->second.expiry <= clock_->NowMillis()) {
      return "";
    }
    return it->second.owner;
  }

 private:
  struct Lease {
    std::string owner;
    int64_t expiry;
  };

  Clock* clock_;
  mutable std::mutex mu_;
  std::map<std::string, Lease> leases_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_LEASE_CACHE_H_
