#include "quick/pointer.h"

#include "cloudkit/queue_zone.h"
#include "tuple/tuple.h"

namespace quick::core {

ck::QueuedItem Pointer::ToItem() const {
  ck::QueuedItem item;
  item.id = Key();
  item.job_type = ck::kPointerJobType;
  item.db_key = Key();
  item.payload = tup::Tuple()
                     .AddString(db_id.app)
                     .AddString(db_id.user)
                     .AddInt(static_cast<int64_t>(db_id.kind))
                     .AddString(zone)
                     .Encode();
  return item;
}

Result<Pointer> Pointer::FromItem(const ck::QueuedItem& item) {
  if (item.job_type != ck::kPointerJobType) {
    return Status::InvalidArgument("item is not a pointer");
  }
  QUICK_ASSIGN_OR_RETURN(tup::Tuple t, tup::Tuple::Decode(item.payload));
  if (t.size() != 4) return Status::InvalidArgument("malformed pointer");
  Pointer p;
  QUICK_ASSIGN_OR_RETURN(p.db_id.app, t.GetString(0));
  QUICK_ASSIGN_OR_RETURN(p.db_id.user, t.GetString(1));
  QUICK_ASSIGN_OR_RETURN(int64_t kind, t.GetInt(2));
  if (kind < 0 || kind > 2) return Status::InvalidArgument("bad kind");
  p.db_id.kind = static_cast<ck::DatabaseKind>(kind);
  QUICK_ASSIGN_OR_RETURN(p.zone, t.GetString(3));
  return p;
}

}  // namespace quick::core
