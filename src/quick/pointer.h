#ifndef QUICK_QUICK_POINTER_H_
#define QUICK_QUICK_POINTER_H_

#include <string>

#include "cloudkit/database_id.h"
#include "cloudkit/queued_item.h"
#include "common/result.h"

namespace quick::core {

/// A top-level-queue entry referencing one queue zone (§6): "the top-level
/// queue for a FoundationDB cluster C contains pointers to queue zones in
/// the same cluster". Stored as a QueuedItem whose id — and indexed db_key
/// — is the canonical key of the (database, zone) pair, making pointer
/// existence a point lookup on the pointer index.
struct Pointer {
  ck::DatabaseId db_id;
  std::string zone;

  /// Canonical key: one pointer per queue zone.
  std::string Key() const { return db_id.ToKeyString() + "\x1f" + zone; }

  /// Renders the pointer into a top-level-queue item (caller sets
  /// last_active_time and enqueues it).
  ck::QueuedItem ToItem() const;

  /// Parses a pointer item created by ToItem().
  static Result<Pointer> FromItem(const ck::QueuedItem& item);
};

}  // namespace quick::core

#endif  // QUICK_QUICK_POINTER_H_
