#ifndef QUICK_QUICK_STATS_H_
#define QUICK_QUICK_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/metrics.h"

namespace quick::core {

/// Per-consumer counters and latency distributions. These are the numbers
/// the paper's evaluation reads out: Figures 5/6 plot the two latency
/// histograms; Figure 7 plots the lease-collision counters and throughput.
struct ConsumerStats {
  // Work items.
  Counter items_dequeued;
  Counter items_processed;
  Counter items_failed_attempts;
  Counter items_requeued;
  Counter items_dropped_permanent;
  /// Terminally-failed items moved into the dead-letter quarantine instead
  /// of being deleted (RetryPolicy::quarantine_on_failure).
  Counter items_quarantined;
  /// Terminal transitions (complete/drop/quarantine/requeue) fenced off
  /// because this consumer's lease had been superseded or the item was
  /// already gone — the zombie-consumer safety net.
  Counter terminal_fenced;
  Counter items_throttled;
  /// Dispatches refused by the admission gate; the item requeues with the
  /// gate's retry-after hint instead of entering the worker pool.
  Counter items_dispatch_throttled;
  Counter local_items_processed;
  /// Continuation items enqueued atomically with a finish transaction
  /// (Gray's queued-transaction pattern — workflow step chaining).
  Counter continuations_enqueued;
  /// Outbox rows written atomically with a finish transaction.
  Counter outbox_effects_recorded;

  // Pointers.
  Counter pointer_lease_attempts;
  Counter pointer_leases_acquired;
  /// Collision detected when reading the pointer (cheap, Fig. 7: "a
  /// redundant read").
  Counter lease_collisions_read;
  /// Collision detected at commit (expensive: resolver work, Fig. 7).
  Counter lease_collisions_commit;
  Counter pointers_requeued;
  Counter pointers_deleted;
  Counter pointer_gc_aborted;

  Counter scans;
  /// Scans short-circuited because the cluster's circuit breaker was open.
  Counter scans_skipped_breaker;
  /// Work-stealing peeks of foreign shards by a striped scanner
  /// (DESIGN.md §12): each steal visits one shard outside this consumer's
  /// stripe, bounding starvation when a stripe's owner dies.
  Counter steals;
  /// Current stripe size: top-level shards this consumer owns, summed over
  /// its assigned clusters. A level (gauge semantics), not a monotone
  /// count — it shrinks when new consumers join the membership group.
  std::atomic<int64_t> shards_owned{0};
  Counter lease_extensions;
  Counter leases_lost;

  // Async pipeline (DESIGN.md §11).
  /// Multi-pointer lease transactions committed (async mode).
  Counter lease_batches;
  /// Batched lease commits that lost a conflict and fell back to
  /// single-pointer lease transactions.
  Counter lease_batch_fallbacks;
  /// Scanner stalls because the in-flight transaction window was full —
  /// the backpressure signal for sizing max_inflight_txns.
  Counter backpressure_waits;

  /// Vested-pointer pickup latency: pointer became available -> its queue
  /// starts being processed (Figures 5/6 series (a)). Microseconds.
  Histogram pointer_latency_micros;
  /// Work-item latency: enqueue -> picked for processing (series (b)).
  Histogram item_latency_micros;
  /// Handler execution time.
  Histogram item_exec_micros;

  // Per-stage pipeline latencies (Algorithm 1/2/3 hot-path transactions),
  // so a perf regression can be pinned to the stage that moved.
  /// Scanner peek+select phase of one cluster pass.
  Histogram scan_micros;
  /// Obtain-lease transaction (LeaseTopItem), success or collision.
  Histogram lease_txn_micros;
  /// Batch-dequeue transaction of a pointed-to queue zone.
  Histogram dequeue_txn_micros;
  /// Transition out of processing: complete/requeue/quarantine commit.
  Histogram finish_txn_micros;

  /// Multi-line operator report with every counter and latency summary.
  std::string FullReport() const {
    std::string out;
    auto line = [&out](const char* name, int64_t v) {
      out += std::string(name) + " = " + std::to_string(v) + "\n";
    };
    line("items_dequeued", items_dequeued.Value());
    line("items_processed", items_processed.Value());
    line("items_failed_attempts", items_failed_attempts.Value());
    line("items_requeued", items_requeued.Value());
    line("items_dropped_permanent", items_dropped_permanent.Value());
    line("items_quarantined", items_quarantined.Value());
    line("terminal_fenced", terminal_fenced.Value());
    line("items_throttled", items_throttled.Value());
    line("items_dispatch_throttled", items_dispatch_throttled.Value());
    line("local_items_processed", local_items_processed.Value());
    line("continuations_enqueued", continuations_enqueued.Value());
    line("outbox_effects_recorded", outbox_effects_recorded.Value());
    line("pointer_lease_attempts", pointer_lease_attempts.Value());
    line("pointer_leases_acquired", pointer_leases_acquired.Value());
    line("lease_collisions_read", lease_collisions_read.Value());
    line("lease_collisions_commit", lease_collisions_commit.Value());
    line("pointers_requeued", pointers_requeued.Value());
    line("pointers_deleted", pointers_deleted.Value());
    line("pointer_gc_aborted", pointer_gc_aborted.Value());
    line("scans", scans.Value());
    line("scans_skipped_breaker", scans_skipped_breaker.Value());
    line("steals", steals.Value());
    line("shards_owned", shards_owned.load(std::memory_order_relaxed));
    line("lease_extensions", lease_extensions.Value());
    line("leases_lost", leases_lost.Value());
    line("lease_batches", lease_batches.Value());
    line("lease_batch_fallbacks", lease_batch_fallbacks.Value());
    line("backpressure_waits", backpressure_waits.Value());
    out += "pointer_latency_us : " + pointer_latency_micros.Summary() + "\n";
    out += "item_latency_us : " + item_latency_micros.Summary() + "\n";
    out += "item_exec_us : " + item_exec_micros.Summary() + "\n";
    out += "scan_us : " + scan_micros.Summary() + "\n";
    out += "lease_txn_us : " + lease_txn_micros.Summary() + "\n";
    out += "dequeue_txn_us : " + dequeue_txn_micros.Summary() + "\n";
    out += "finish_txn_us : " + finish_txn_micros.Summary() + "\n";
    return out;
  }

  /// Publishes every counter (as a gauge — the registry value mirrors this
  /// struct, it does not accumulate) and latency histogram into `registry`
  /// under `prefix` (e.g. "quick.consumer"), so the exporters and the
  /// bench reports can read consumer state in one place. Idempotent:
  /// calling again overwrites gauges and republishes histograms.
  void PublishTo(MetricsRegistry* registry, const std::string& prefix) const {
    auto gauge = [&](const char* name, const Counter& c) {
      registry->GetGauge(prefix + "." + name)->Set(c.Value());
    };
    gauge("items_dequeued", items_dequeued);
    gauge("items_processed", items_processed);
    gauge("items_failed_attempts", items_failed_attempts);
    gauge("items_requeued", items_requeued);
    gauge("items_dropped_permanent", items_dropped_permanent);
    gauge("items_quarantined", items_quarantined);
    gauge("terminal_fenced", terminal_fenced);
    gauge("items_throttled", items_throttled);
    gauge("items_dispatch_throttled", items_dispatch_throttled);
    gauge("local_items_processed", local_items_processed);
    gauge("continuations_enqueued", continuations_enqueued);
    gauge("outbox_effects_recorded", outbox_effects_recorded);
    gauge("pointer_lease_attempts", pointer_lease_attempts);
    gauge("pointer_leases_acquired", pointer_leases_acquired);
    gauge("lease_collisions_read", lease_collisions_read);
    gauge("lease_collisions_commit", lease_collisions_commit);
    gauge("pointers_requeued", pointers_requeued);
    gauge("pointers_deleted", pointers_deleted);
    gauge("pointer_gc_aborted", pointer_gc_aborted);
    gauge("scans", scans);
    gauge("scans_skipped_breaker", scans_skipped_breaker);
    gauge("steals", steals);
    registry->GetGauge(prefix + ".shards_owned")
        ->Set(shards_owned.load(std::memory_order_relaxed));
    gauge("lease_extensions", lease_extensions);
    gauge("leases_lost", leases_lost);
    gauge("lease_batches", lease_batches);
    gauge("lease_batch_fallbacks", lease_batch_fallbacks);
    gauge("backpressure_waits", backpressure_waits);
    auto hist = [&](const char* name, const Histogram& h) {
      Histogram* out = registry->GetHistogram(prefix + "." + name);
      out->Reset();
      out->Merge(h);
    };
    hist("pointer_latency_us", pointer_latency_micros);
    hist("item_latency_us", item_latency_micros);
    hist("item_exec_us", item_exec_micros);
    hist("scan_us", scan_micros);
    hist("lease_txn_us", lease_txn_micros);
    hist("dequeue_txn_us", dequeue_txn_micros);
    hist("finish_txn_us", finish_txn_micros);
  }

  /// One-line summary for logs.
  std::string Summary() const {
    std::string out;
    out += "items=" + std::to_string(items_processed.Value());
    out += " deq=" + std::to_string(items_dequeued.Value());
    out += " ptr_leases=" + std::to_string(pointer_leases_acquired.Value());
    out += " coll_read=" + std::to_string(lease_collisions_read.Value());
    out += " coll_commit=" + std::to_string(lease_collisions_commit.Value());
    out += " ptr_deleted=" + std::to_string(pointers_deleted.Value());
    return out;
  }
};

}  // namespace quick::core

#endif  // QUICK_QUICK_STATS_H_
