#ifndef QUICK_QUICK_ALERTS_H_
#define QUICK_QUICK_ALERTS_H_

#include <mutex>
#include <string>
#include <vector>

#include "cloudkit/database_id.h"

namespace quick::core {

/// An operational event needing attention (§2/§6: jobs retrying
/// indefinitely "would eventually cause alerts and manual mitigation").
/// Raised by consumers when an item's error count crosses the alert
/// threshold of its retry policy, and by the per-cluster health tracker
/// when a cluster's circuit breaker changes state.
struct Alert {
  enum class Kind {
    /// Item error count crossed the policy's alert threshold.
    kRepeatedFailures,
    /// Item was dropped after exhausting its attempt budget.
    kDroppedAfterExhaustion,
    /// Item deleted due to a permanent error.
    kPermanentFailure,
    /// No handler registered for the item's job type.
    kUnknownJobType,
    /// Item moved into the zone's dead-letter quarantine after a terminal
    /// failure (permanent error, retry exhaustion, or unknown job type);
    /// detail carries the reason and final error.
    kQuarantined,
    /// A cluster's circuit breaker tripped open (cluster looks down).
    kBreakerOpened,
    /// A cluster's circuit breaker closed again (cluster recovered).
    kBreakerClosed,
    /// A warm-standby replica detected a version gap or CRC divergence
    /// and halted itself rather than serve a forked history.
    kReplicaDivergence,
    /// A standby was promoted to primary during a region failover.
    kReplicaPromoted,
    /// A failover refused to promote a standby that lacked acknowledged
    /// history (it was behind the sealed epoch's acked version).
    kPromotionRefused,
  };

  Kind kind;
  ck::DatabaseId db_id;
  std::string zone;
  std::string item_id;
  std::string job_type;
  int64_t error_count = 0;
  std::string detail;
  /// Set on breaker alerts: the affected cluster.
  std::string cluster;

  std::string ToString() const;
};

/// Destination for alerts. Implementations must be thread-safe; consumers
/// raise alerts from Worker threads.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void Raise(const Alert& alert) = 0;
};

/// In-memory sink: collects alerts for tests, examples, and operator polls.
class CollectingAlertSink : public AlertSink {
 public:
  void Raise(const Alert& alert) override {
    std::lock_guard<std::mutex> lock(mu_);
    alerts_.push_back(alert);
  }

  std::vector<Alert> Drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Alert> out;
    out.swap(alerts_);
    return out;
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return alerts_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Alert> alerts_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_ALERTS_H_
