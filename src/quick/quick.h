#ifndef QUICK_QUICK_QUICK_H_
#define QUICK_QUICK_QUICK_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cloudkit/service.h"
#include "common/trace.h"
#include "fdb/executor.h"
#include "fdb/future.h"
#include "quick/admission_gate.h"
#include "quick/config.h"
#include "quick/pointer.h"
#include "quick/tenant_metrics.h"

namespace quick::core {

/// A client-facing work item.
struct WorkItem {
  std::string job_type;
  std::string payload;
  int64_t priority = 0;
  /// Optional idempotency id; random when empty.
  std::string id;
};

/// Callback invoked after an enqueue commits an item at the FRONT of its
/// queue (§5 "Push notifications"): the sketched client-notification path —
/// CloudKit's daemon would arm a timer for `vesting_time` and wake the app
/// then, instead of polling. Invoked outside any transaction.
using FrontOfQueueNotifier =
    std::function<void(const ck::DatabaseId& db_id, const std::string& item_id,
                       int64_t vesting_time)>;

/// Deferred follow-up of a two-part enqueue (§6 "Reducing contention
/// between producers and consumers"): when the pointer already existed,
/// part two — a separate, best-effort transaction — lowers its vesting
/// time if the new item would otherwise wait too long. Never fails the
/// client request.
struct EnqueueFollowUp {
  bool pointer_existed = false;
  Pointer pointer;
  int64_t item_vesting_millis = 0;
  /// Set when the new item landed at the front of its queue and a
  /// FrontOfQueueNotifier is registered; ExecuteFollowUp fires it.
  bool notify_front = false;
  std::string item_id;
};

/// QuiCK's public API: transactional enqueue of deferred work items into
/// per-tenant queue zones, with the per-cluster top-level queue and pointer
/// index maintained as the paper describes (§6). Consumers are created via
/// consumer.h.
class Quick {
 public:
  Quick(ck::CloudKitService* ck, QuickConfig config = {})
      : ck_(ck), config_(config) {}

  /// Part one of the enqueue protocol, composable with the client's own
  /// writes in `txn` (which must be on `db`'s cluster): adds the item to
  /// Q_DB and — reading the exact pointer-index key, never the pointer
  /// record — creates the Q_C pointer when missing. On success *follow_up
  /// says whether ExecuteFollowUp should run after commit.
  Result<std::string> EnqueueInTransaction(fdb::Transaction* txn,
                                           const ck::DatabaseRef& db,
                                           const WorkItem& item,
                                           int64_t vesting_delay_millis,
                                           EnqueueFollowUp* follow_up);

  /// Part two: best-effort vesting-time fix-up in its own transaction.
  /// Failures (e.g. conflicts with a consumer leasing the pointer) are
  /// absorbed — this is an optimization, not a correctness requirement.
  void ExecuteFollowUp(const ck::DatabaseRef& db,
                       const EnqueueFollowUp& follow_up);

  /// Convenience: runs part one in its own transaction, then part two.
  /// Returns the enqueued item id.
  Result<std::string> Enqueue(const ck::DatabaseId& db_id, const WorkItem& item,
                              int64_t vesting_delay_millis = 0);

  /// Enqueue's pipelined twin (DESIGN.md §11 applied to the producer
  /// path): part one rides the cluster's async group-commit pipeline via
  /// RunTransactionAsync, so the calling thread never blocks on a commit
  /// RTT. The item id is picked up front and written to *item_id_out (when
  /// non-null) before the future resolves — the id is only meaningful once
  /// the future resolves OK. Admission is checked synchronously; a
  /// migration fence re-arms the attempt on `exec` after
  /// move_retry_delay_millis, up to move_retry_attempts times. Metrics,
  /// spans, and the best-effort follow-up run on the executor after the
  /// commit. `exec` and this Quick must outlive the returned future.
  fdb::Future<Status> EnqueueAsync(const ck::DatabaseId& db_id,
                                   const WorkItem& item,
                                   int64_t vesting_delay_millis,
                                   std::string* item_id_out,
                                   fdb::Executor* exec,
                                   fdb::CancelToken cancel = {});

  /// Atomically enqueues several items for one tenant in a single
  /// transaction (the queue-zone transactional batch §7 contrasts with
  /// SQS). Returns the item ids, all-or-nothing.
  Result<std::vector<std::string>> EnqueueBatch(
      const ck::DatabaseId& db_id, const std::vector<WorkItem>& items,
      int64_t vesting_delay_millis = 0);

  /// Registers the §5 front-of-queue notification hook. Not thread-safe;
  /// call during setup.
  void SetFrontOfQueueNotifier(FrontOfQueueNotifier notifier) {
    notifier_ = std::move(notifier);
  }

  /// §6 local work items: enqueued directly into cluster `cluster_name`'s
  /// top-level queue alongside pointers; they never migrate with a tenant.
  Result<std::string> EnqueueLocal(const std::string& cluster_name,
                                   const WorkItem& item,
                                   int64_t vesting_delay_millis = 0);

  /// Number of pending items in `db_id`'s queue zone (per-tenant
  /// observability, from the count index; a snapshot read).
  Result<int64_t> PendingCount(const ck::DatabaseId& db_id);

  /// Number of entries (pointers + local items) in a cluster's top-level
  /// queue.
  Result<int64_t> TopLevelCount(const std::string& cluster_name);

  /// Moves a tenant database to another cluster with its queued work
  /// (§6 "User-move and local work items"): seal the tenant behind the
  /// migration fence (all enqueues and dequeues back off), copy data with
  /// the queue frozen, carry the Q_C pointer over, flip placement, then
  /// delete the source data and clear the fence. Stop-the-world for the
  /// one tenant being moved; control::TenantBalancer layers catch-up
  /// rounds and lease draining on top for moves under live consumers.
  Status MoveTenant(const ck::DatabaseId& db_id,
                    const std::string& dest_cluster);

  /// Number of top-level shards for `cluster_name`: the per-cluster
  /// override when present, else the global `top_zone_shards`.
  int TopZoneShards(const std::string& cluster_name) const {
    auto it = config_.cluster_top_zone_shards.find(cluster_name);
    const int n = it != config_.cluster_top_zone_shards.end()
                      ? it->second
                      : config_.top_zone_shards;
    return n < 1 ? 1 : n;
  }

  /// Shard index `item_id` hashes to under `n_shards` shards. Exposed so
  /// tests and admin tooling can derive placement independently.
  static size_t ShardIndexFor(const std::string& item_id, int n_shards) {
    if (n_shards <= 1) return 0;
    return std::hash<std::string>{}(item_id) % static_cast<size_t>(n_shards);
  }

  /// Name of the top-level queue shard of `cluster_name` holding
  /// `item_id` (a pointer key or local-item id). With one shard this is
  /// just top_zone_name.
  std::string TopZoneNameFor(const std::string& cluster_name,
                             const std::string& item_id) const {
    const int n = TopZoneShards(cluster_name);
    if (n <= 1) return config_.top_zone_name;
    return config_.top_zone_name + "/" +
           std::to_string(ShardIndexFor(item_id, n));
  }

  /// Shard name under the *global* shard count (clusters without a
  /// per-cluster override).
  std::string TopZoneNameFor(const std::string& item_id) const {
    if (config_.top_zone_shards <= 1) return config_.top_zone_name;
    return config_.top_zone_name + "/" +
           std::to_string(ShardIndexFor(item_id, config_.top_zone_shards));
  }

  /// All top-level shard zone names a consumer must scan on
  /// `cluster_name`, in shard order.
  std::vector<std::string> TopZoneNames(const std::string& cluster_name) const {
    return ShardNames(TopZoneShards(cluster_name));
  }

  /// Shard names under the global shard count.
  std::vector<std::string> TopZoneNames() const {
    return ShardNames(config_.top_zone_shards < 1 ? 1
                                                  : config_.top_zone_shards);
  }

  /// Opens the top-level queue shard that holds `item_id`. The shard is
  /// derived against the cluster the zone lives on (`cluster_db`), so
  /// migration between clusters with different shard counts re-derives
  /// placement at the destination.
  ck::QueueZone OpenTopZoneFor(const ck::DatabaseRef& cluster_db,
                               const std::string& item_id,
                               fdb::Transaction* txn) {
    return ck_->OpenQueueZone(
        cluster_db, TopZoneNameFor(cluster_db.cluster->name(), item_id), txn);
  }

  /// Opens the top-level queue zone Q_C of a cluster within `txn`
  /// (unsharded configurations only; sharded callers use OpenTopZoneFor).
  ck::QueueZone OpenTopZone(const ck::DatabaseRef& cluster_db,
                            fdb::Transaction* txn) {
    return ck_->OpenQueueZone(cluster_db, config_.top_zone_name, txn);
  }

  /// Opens a tenant's queue zone Q_DB within `txn`.
  ck::QueueZone OpenTenantZone(const ck::DatabaseRef& db,
                               fdb::Transaction* txn) {
    return ck_->OpenQueueZone(db, config_.queue_zone_name, txn,
                              config_.fifo_tenant_zones);
  }

  ck::CloudKitService* cloudkit() { return ck_; }
  const QuickConfig& config() const { return config_; }
  Clock* clock() const { return ck_->clock(); }

  /// Item-lifecycle span store. Producers record the enqueue-commit span
  /// here; consumers created over this Quick record the rest of the
  /// chain. Defaults to the process-wide Tracer::Default() (disabled
  /// unless QUICK_TRACE is set).
  Tracer* tracer() const { return tracer_; }
  /// Not thread-safe; call during setup, before creating consumers (they
  /// capture the tracer at construction).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Admission gate consulted by Enqueue/EnqueueBatch and by consumer
  /// dispatch. Null (the default) admits everything. Not thread-safe;
  /// call during setup.
  AdmissionGate* admission() const { return admission_; }
  void set_admission(AdmissionGate* gate) { admission_ = gate; }

  /// Per-tenant ck.tenant.* counters (shared with consumers).
  TenantMetrics* tenant_metrics() { return &tenant_metrics_; }

 private:
  /// Producer-side admission check; OK or the client-visible refusal.
  Status AdmitEnqueue(const ck::DatabaseId& db_id, int64_t cost);

  std::vector<std::string> ShardNames(int n) const {
    if (n <= 1) return {config_.top_zone_name};
    std::vector<std::string> names;
    names.reserve(n);
    for (int i = 0; i < n; ++i) {
      names.push_back(config_.top_zone_name + "/" + std::to_string(i));
    }
    return names;
  }

  ck::CloudKitService* ck_;
  QuickConfig config_;
  FrontOfQueueNotifier notifier_;
  Tracer* tracer_ = Tracer::Default();
  AdmissionGate* admission_ = nullptr;
  TenantMetrics tenant_metrics_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_QUICK_H_
