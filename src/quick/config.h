#ifndef QUICK_QUICK_CONFIG_H_
#define QUICK_QUICK_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

namespace quick::core {

/// System-wide QuiCK settings.
struct QuickConfig {
  /// Zone name used for the per-database work queue Q_DB.
  std::string queue_zone_name = "_queue";
  /// Use the strict-FIFO schema for tenant queue zones (§5's commit-order
  /// extension). Consumers serving these zones must set
  /// ConsumerConfig::fifo_tenant_zones accordingly.
  bool fifo_tenant_zones = false;
  /// Zone name of the top-level queue Q_C inside each ClusterDB.
  std::string top_zone_name = "_quick_q";
  /// Number of top-level queue shards per cluster (§6: "more queues can be
  /// created for scalability by sharding the key-space"). Entries are
  /// assigned to shards by hashing their item id, so every component —
  /// enqueuers, consumers, migration, admin — derives the shard
  /// independently. 1 reproduces the paper's deployed configuration.
  int top_zone_shards = 1;
  /// Per-cluster overrides of `top_zone_shards`, keyed by cluster name.
  /// Clusters absent from the map use the global value. Shard derivation
  /// is always done against the cluster that owns the zone, so a tenant
  /// migrating between clusters with different shard counts lands in the
  /// shard derived at the *destination*.
  std::map<std::string, int> cluster_top_zone_shards;
  /// Second-part enqueue optimization (§6 "Reducing contention"): lower the
  /// pointer's vesting time when it exceeds the new item's vesting by more
  /// than this slack.
  int64_t pointer_vesting_slack_millis = 1000;
  /// Enqueue retries when a tenant is fenced mid-migration (kTenantMoving):
  /// each attempt re-resolves placement, so once the move's flip lands the
  /// enqueue proceeds at the destination.
  int move_retry_attempts = 10;
  int64_t move_retry_delay_millis = 20;
};

/// Per-cluster circuit breaker (closed → open → half-open) guarding the
/// consumer against clusters that have gone dark: instead of burning FDB
/// retry budgets against an unreachable cluster every scan round, the
/// Scanner skips open-circuit clusters and probes them with exponentially
/// backed-off half-open attempts until they recover.
struct CircuitBreakerConfig {
  bool enabled = true;
  /// Consecutive infrastructure failures (unavailable / timed-out /
  /// transaction-too-old) that trip the breaker open. Contention outcomes
  /// (conflicts, lost leases) never count.
  int failure_threshold = 5;
  /// Consecutive half-open probe successes required to close again.
  int success_threshold = 2;
  /// How long the breaker stays open before the first half-open probe;
  /// doubles (times `open_backoff_multiplier`) on every failed probe, up
  /// to `open_max_millis`.
  int64_t open_initial_millis = 500;
  int64_t open_max_millis = 30000;
  double open_backoff_multiplier = 2.0;
};

/// Per-consumer scheduling parameters; names follow Algorithm 1–3 of the
/// paper. Defaults mirror §8 where given (peek_max=20K, selection_max=2K,
/// selection_frac=0.02) and are otherwise practical small-scale values.
struct ConsumerConfig {
  /// Max pointers peeked from a top-level queue per scan (Alg. 1).
  int peek_max = 20000;
  /// Fraction of peeked pointers a randomized Scanner selects (Alg. 1).
  double selection_frac = 0.02;
  /// Upper bound on pointers selected per peek (Alg. 1).
  int selection_max = 2000;
  /// Max pointers processed per cluster before moving on (Alg. 1).
  int processing_bound = 10000;
  /// Max work items dequeued per queue visit (Alg. 2) — the per-queue
  /// fairness bound.
  int dequeue_max = 1;
  /// Pointer lease duration (short: just long enough to dequeue, §6).
  int64_t pointer_lease_millis = 1000;
  /// Work-item lease duration.
  int64_t item_lease_millis = 5000;
  /// How often the lease extender renews in-flight item leases.
  int64_t lease_extension_interval_millis = 1000;
  /// Pointer GC grace (§6): a pointer to an empty queue is deleted only
  /// after the queue has been inactive this long.
  int64_t min_inactive_millis = 60000;
  /// Threads in the Manager pool (128 in the paper's runs).
  int num_manager_threads = 4;
  /// Threads in the Worker pool (128 in the paper's runs).
  int num_worker_threads = 8;
  /// Scanner sleep when every top-level queue came up empty.
  int64_t idle_sleep_millis = 20;
  /// Process pointers in top-level-queue order instead of random selection
  /// (the elected no-starvation scanner, §6). When a LeaseCache is
  /// provided, election is dynamic and this field is ignored.
  bool sequential = false;
  /// Use cached read versions / causal-read-risky for peeks and leases
  /// (§6 "Isolation level"); enqueues never do.
  bool relaxed_reads_for_peek = true;
  /// Baseline mode for the lease-granularity ablation: consumers lease
  /// individual work items without first leasing the queue's pointer
  /// (ATF-style, §7). Leave false for QuiCK behaviour.
  bool item_level_leases_only = false;
  /// Dequeue tenant-zone items in strict enqueue-commit order instead of
  /// (priority, vesting) order. Requires every tenant queue zone to use
  /// the FIFO schema (ZoneType::kFifoQueue / QueueZone(..., fifo=true)).
  bool fifo_tenant_zones = false;
  /// Per-cluster health tracking / circuit breaking (see
  /// CircuitBreakerConfig).
  CircuitBreakerConfig breaker;

  // --- Shard-affine striped scanning (DESIGN.md §12) ---
  /// Stripe the top-level shards of each cluster across the live consumers:
  /// every scan the consumer announces itself to the LeaseCache membership
  /// group and peeks only the shards that rendezvous-hashing assigns to it,
  /// plus occasional work-stealing peeks of foreign shards (below). With
  /// one consumer, or without a LeaseCache, the stripe is all shards.
  /// Ignored when the cluster has a single shard — striping one shard
  /// would idle every consumer but the owner.
  bool striped_scanners = false;
  /// Probability per (scan, cluster) that a striped scanner also peeks one
  /// random foreign shard. This bounds starvation when a stripe's owner
  /// dies: until membership TTL expiry re-assigns the stripe, foreign
  /// shards are still visited at this rate. A consumer owning zero shards
  /// always steals exactly one.
  double steal_probability = 0.05;
  /// TTL of the consumer's membership announcement; stripe assignment
  /// rebalances when a consumer's announcement expires (crash) or a new
  /// one appears. Defaults to the pointer-lease scale: 4 * idle_sleep
  /// bounded below by 1s, same as the sequential-scanner election TTL.
  int64_t membership_ttl_millis = 0;  // 0 = derive from idle_sleep_millis

  // --- Async pipelined mode (DESIGN.md §11) ---
  /// Drive the consumer as a pipelined state machine: lease / dequeue /
  /// finish transactions commit through the cluster's async group-commit
  /// pipeline, so an in-flight commit holds a window slot instead of a
  /// thread and hundreds of transactions overlap one commit RTT. The
  /// synchronous RunOnePass()/ProcessTopItem() paths are unaffected.
  bool async_pipeline = false;
  /// In-flight transaction window per consumer: the Scanner stops
  /// admitting new pointer batches when this many async transaction
  /// chains are outstanding (backpressure; see stats.backpressure_waits).
  int max_inflight_txns = 256;
  /// Q_C pointers leased per transaction in async mode: one commit RTT is
  /// amortized across the batch; a conflicted batch falls back to
  /// single-pointer leases so one contended pointer cannot poison it.
  int lease_batch_size = 8;
  /// Threads in the continuation executor that runs async transaction
  /// bodies and completions.
  int async_executor_threads = 4;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_CONFIG_H_
