#include "quick/quick.h"

#include "cloudkit/migration_state.h"
#include "common/random.h"
#include "fdb/retry.h"
#include "quick/trace_hooks.h"

namespace quick::core {

Result<std::string> Quick::EnqueueInTransaction(fdb::Transaction* txn,
                                                const ck::DatabaseRef& db,
                                                const WorkItem& item,
                                                int64_t vesting_delay_millis,
                                                EnqueueFollowUp* follow_up) {
  // Migration fence: a strong read of the tenant's MoveState key. When a
  // move has sealed the tenant, back off (kTenantMoving — non-retryable,
  // so it escapes the FDB retry loop; Enqueue's outer loop re-resolves
  // placement). When no fence is up, the read makes this enqueue conflict
  // with a racing seal transaction's write — any enqueue serialized after
  // the seal is guaranteed to have seen it, which is what makes the
  // balancer's post-seal final copy exact.
  if (db.id.kind != ck::DatabaseKind::kCluster) {
    QUICK_ASSIGN_OR_RETURN(std::optional<std::string> fence,
                           txn->Get(ck::MoveState::Key(db.id)));
    if (fence.has_value()) {
      std::optional<ck::MoveState> state = ck::MoveState::Decode(*fence);
      if (state.has_value() && state->FencesEnqueues()) {
        return Status::TenantMoving("tenant " + db.id.ToString() +
                                    " is moving to " + state->dest_cluster);
      }
    }
  }

  // Add the work item to the tenant's queue zone Q_DB.
  ck::QueueZone tenant_zone = OpenTenantZone(db, txn);

  // §5 push-notification hook: detect whether this item will be the new
  // queue front (snapshot index read; only when a notifier is registered).
  bool is_front = false;
  if (notifier_ != nullptr && follow_up != nullptr) {
    rl::IndexScanOptions head_opts;
    head_opts.limit = 1;
    head_opts.snapshot = true;
    QUICK_ASSIGN_OR_RETURN(
        std::vector<rl::IndexEntry> head,
        tenant_zone.store()->ScanIndex(ck::QueueZone::kVestingIndex,
                                       tup::Tuple(), head_opts));
    if (head.empty()) {
      is_front = true;
    } else {
      QUICK_ASSIGN_OR_RETURN(int64_t head_priority, head[0].indexed_values.GetInt(0));
      QUICK_ASSIGN_OR_RETURN(int64_t head_vesting, head[0].indexed_values.GetInt(1));
      const int64_t item_vesting =
          clock()->NowMillis() + vesting_delay_millis;
      is_front = std::make_pair(item.priority, item_vesting) <
                 std::make_pair(head_priority, head_vesting);
    }
  }

  ck::QueuedItem queued;
  queued.id = item.id;
  queued.job_type = item.job_type;
  queued.priority = item.priority;
  queued.payload = item.payload;
  QUICK_ASSIGN_OR_RETURN(std::string item_id,
                         tenant_zone.Enqueue(queued, vesting_delay_millis));

  // Pointer existence is a point read of the pointer-index key in Q_C —
  // deliberately not the pointer record, whose frequent lease/requeue
  // updates would otherwise conflict with every enqueue (§6).
  const Pointer pointer{db.id, config_.queue_zone_name};
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(db.cluster->name());
  ck::QueueZone top_zone = OpenTopZoneFor(cluster_db, pointer.Key(), txn);
  const std::string index_key =
      top_zone.DbKeyIndexEntryKey(pointer.Key(), pointer.Key());
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> index_entry,
                         txn->Get(index_key));

  const int64_t now = clock()->NowMillis();
  if (follow_up != nullptr) {
    follow_up->pointer = pointer;
    follow_up->item_vesting_millis = now + vesting_delay_millis;
    follow_up->pointer_existed = index_entry.has_value();
    follow_up->notify_front = is_front;
    follow_up->item_id = item_id;
  }
  if (!index_entry.has_value()) {
    // Create the pointer; its index entry is written in this transaction,
    // so a concurrent delete (which reads the zone and clears this index
    // key) conflicts with us — the §6 correctness argument.
    ck::QueuedItem pointer_item = pointer.ToItem();
    pointer_item.last_active_time = now;
    QUICK_RETURN_IF_ERROR(
        top_zone.Enqueue(std::move(pointer_item), vesting_delay_millis)
            .status());
  }
  return item_id;
}

void Quick::ExecuteFollowUp(const ck::DatabaseRef& db,
                            const EnqueueFollowUp& follow_up) {
  if (follow_up.notify_front && notifier_ != nullptr) {
    notifier_(db.id, follow_up.item_id, follow_up.item_vesting_millis);
  }
  if (!follow_up.pointer_existed) return;
  // Best effort, single attempt: if this conflicts with a consumer, the
  // consumer is touching the queue right now anyway.
  fdb::Transaction txn = db.cluster->CreateTransaction();
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(db.cluster->name());
  ck::QueueZone top_zone =
      OpenTopZoneFor(cluster_db, follow_up.pointer.Key(), &txn);
  Result<std::optional<ck::QueuedItem>> loaded =
      top_zone.Load(follow_up.pointer.Key());
  if (!loaded.ok() || !loaded->has_value()) return;
  ck::QueuedItem pointer_item = **loaded;
  if (pointer_item.leased()) return;  // a consumer is on it already
  if (pointer_item.vesting_time <=
      follow_up.item_vesting_millis + config_.pointer_vesting_slack_millis) {
    return;  // pointer vests soon enough
  }
  pointer_item.vesting_time = follow_up.item_vesting_millis;
  if (!top_zone.SaveItem(pointer_item).ok()) return;
  (void)txn.Commit();  // ignore failures: optimization only
}

Status Quick::AdmitEnqueue(const ck::DatabaseId& db_id, int64_t cost) {
  if (admission_ == nullptr) return Status::OK();
  const std::string cluster = ck_->placement()->AssignOrGet(db_id);
  const AdmissionDecision d = admission_->AdmitEnqueue(db_id, cluster, cost);
  if (d.admitted()) return Status::OK();
  const TraceHooks hooks(tracer_, clock(), "producer");
  if (hooks.enabled()) {
    const char* name = d.outcome == AdmissionDecision::Outcome::kShed
                           ? stage::kAdmissionShed
                           : stage::kAdmissionThrottled;
    // Pre-birth denial: no item id exists, so the span chain is keyed by
    // the tenant.
    hooks.Mark(db_id.ToString(), name,
               std::string("level=") + d.level + " retry_after_ms=" +
                   std::to_string(d.retry_after_millis));
  }
  return ThrottledStatus(d);
}

Result<std::string> Quick::Enqueue(const ck::DatabaseId& db_id,
                                   const WorkItem& item,
                                   int64_t vesting_delay_millis) {
  // Admission is checked once per client request, before any transaction
  // work; kTenantMoving retries below never re-charge the buckets.
  QUICK_RETURN_IF_ERROR(AdmitEnqueue(db_id, /*cost=*/1));
  const TraceHooks hooks(tracer_, clock(), "producer");
  const int64_t start_micros = hooks.enabled() ? hooks.NowMicros() : 0;
  std::string item_id;
  EnqueueFollowUp follow_up;
  ck::DatabaseRef db;
  Status st;
  for (int attempt = 0;; ++attempt) {
    // Re-resolve placement each attempt: after a move's flip the tenant's
    // new home admits the enqueue.
    db = ck_->OpenDatabase(db_id);
    st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      Result<std::string> r = EnqueueInTransaction(&txn, db, item,
                                                   vesting_delay_millis,
                                                   &follow_up);
      QUICK_RETURN_IF_ERROR(r.status());
      item_id = *r;
      return Status::OK();
    });
    if (!st.IsTenantMoving() || attempt >= config_.move_retry_attempts) break;
    clock()->SleepMillis(config_.move_retry_delay_millis);
  }
  QUICK_RETURN_IF_ERROR(st);
  tenant_metrics_.OnEnqueued(db_id, 1);
  // Enqueue-commit span: the trace id is the item id EnqueueInTransaction
  // assigned; spans are recorded only for committed enqueues (an aborted
  // client transaction never produced an item).
  if (hooks.enabled()) {
    hooks.Record(item_id, stage::kEnqueued, start_micros, hooks.NowMicros(),
                 "db=" + db_id.ToString() +
                     " delay_ms=" + std::to_string(vesting_delay_millis));
    if (!follow_up.pointer_existed) {
      hooks.Record(follow_up.pointer.Key(), stage::kPointerCreated,
                   start_micros, hooks.NowMicros(), std::string(),
                   /*parent=*/item_id);
    }
  }
  ExecuteFollowUp(db, follow_up);
  return item_id;
}

fdb::Future<Status> Quick::EnqueueAsync(const ck::DatabaseId& db_id,
                                        const WorkItem& item,
                                        int64_t vesting_delay_millis,
                                        std::string* item_id_out,
                                        fdb::Executor* exec,
                                        fdb::CancelToken cancel) {
  auto promise = std::make_shared<fdb::Promise<Status>>();
  Status admit = AdmitEnqueue(db_id, /*cost=*/1);
  if (!admit.ok()) {
    if (item_id_out != nullptr) item_id_out->clear();
    promise->Set(admit);
    return promise->GetFuture();
  }
  // The id is picked up front so the caller (and a workflow's deterministic
  // id scheme) knows it before the commit resolves; Q_DB's Enqueue is
  // idempotent on a set id.
  WorkItem fixed = item;
  if (fixed.id.empty()) fixed.id = Random::ThreadLocal().NextUuid();
  if (item_id_out != nullptr) *item_id_out = fixed.id;

  struct AsyncState {
    ck::DatabaseRef db;
    EnqueueFollowUp follow_up;
    int attempt = 0;
  };
  auto state = std::make_shared<AsyncState>();
  const int64_t start_micros = clock()->NowMicros();
  // Self-referencing attempt closure: the shared function re-arms itself
  // through PostAfter on a migration fence, mirroring Enqueue's placement
  // re-resolution loop without parking a thread. The terminal path clears
  // *attempt_fn to break the ownership cycle.
  auto attempt_fn = std::make_shared<std::function<void()>>();
  *attempt_fn = [this, db_id, fixed, vesting_delay_millis, exec, cancel,
                 promise, state, attempt_fn, start_micros]() {
    state->db = ck_->OpenDatabase(db_id);
    fdb::RunTransactionAsync(
        state->db.cluster,
        [this, state, fixed, vesting_delay_millis](fdb::Transaction& txn) {
          return EnqueueInTransaction(&txn, state->db, fixed,
                                      vesting_delay_millis, &state->follow_up)
              .status();
        },
        exec, cancel)
        .OnReady([this, db_id, fixed, vesting_delay_millis, exec, promise,
                  state, attempt_fn, start_micros](const Status& st) {
          if (st.IsTenantMoving() &&
              state->attempt < config_.move_retry_attempts) {
            ++state->attempt;
            exec->PostAfter(config_.move_retry_delay_millis,
                            [attempt_fn]() { (*attempt_fn)(); });
            return;
          }
          if (st.ok()) {
            tenant_metrics_.OnEnqueued(db_id, 1);
            const TraceHooks hooks(tracer_, clock(), "producer");
            if (hooks.enabled()) {
              hooks.Record(fixed.id, stage::kEnqueued, start_micros,
                           hooks.NowMicros(),
                           "db=" + db_id.ToString() + " async delay_ms=" +
                               std::to_string(vesting_delay_millis));
              if (!state->follow_up.pointer_existed) {
                hooks.Record(state->follow_up.pointer.Key(),
                             stage::kPointerCreated, start_micros,
                             hooks.NowMicros(), std::string(),
                             /*parent=*/fixed.id);
              }
            }
            ExecuteFollowUp(state->db, state->follow_up);
          }
          promise->Set(st);
          // No attempt is mid-execution here (this is the OnReady
          // continuation); dropping the function frees the cycle.
          *attempt_fn = nullptr;
        });
  };
  (*attempt_fn)();
  return promise->GetFuture();
}

Result<std::vector<std::string>> Quick::EnqueueBatch(
    const ck::DatabaseId& db_id, const std::vector<WorkItem>& items,
    int64_t vesting_delay_millis) {
  QUICK_RETURN_IF_ERROR(
      AdmitEnqueue(db_id, static_cast<int64_t>(items.size())));
  const TraceHooks hooks(tracer_, clock(), "producer");
  const int64_t start_micros = hooks.enabled() ? hooks.NowMicros() : 0;
  std::vector<std::string> ids;
  EnqueueFollowUp follow_up;
  ck::DatabaseRef db;
  Status st;
  for (int attempt = 0;; ++attempt) {
    db = ck_->OpenDatabase(db_id);
    st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      ids.clear();
      for (const WorkItem& item : items) {
        // Only the first item can create the pointer; later ones see the
        // buffered index entry through read-your-writes.
        EnqueueFollowUp item_follow_up;
        Result<std::string> r = EnqueueInTransaction(
            &txn, db, item, vesting_delay_millis, &item_follow_up);
        QUICK_RETURN_IF_ERROR(r.status());
        ids.push_back(*r);
        if (ids.size() == 1) follow_up = item_follow_up;
      }
      return Status::OK();
    });
    if (!st.IsTenantMoving() || attempt >= config_.move_retry_attempts) break;
    clock()->SleepMillis(config_.move_retry_delay_millis);
  }
  QUICK_RETURN_IF_ERROR(st);
  tenant_metrics_.OnEnqueued(db_id, static_cast<int64_t>(ids.size()));
  if (hooks.enabled()) {
    const int64_t end_micros = hooks.NowMicros();
    for (const std::string& id : ids) {
      hooks.Record(id, stage::kEnqueued, start_micros, end_micros,
                   "db=" + db_id.ToString() + " batch=" +
                       std::to_string(ids.size()) +
                       " delay_ms=" + std::to_string(vesting_delay_millis));
    }
    if (!follow_up.pointer_existed && !ids.empty()) {
      hooks.Record(follow_up.pointer.Key(), stage::kPointerCreated,
                   start_micros, end_micros, std::string(),
                   /*parent=*/ids.front());
    }
  }
  ExecuteFollowUp(db, follow_up);
  return ids;
}

Result<std::string> Quick::EnqueueLocal(const std::string& cluster_name,
                                        const WorkItem& item,
                                        int64_t vesting_delay_millis) {
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(cluster_name);
  if (cluster_db.cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  // The shard is derived from the item id, so pick the id up front.
  const std::string local_id =
      item.id.empty() ? Random::ThreadLocal().NextUuid() : item.id;
  const TraceHooks hooks(tracer_, clock(), "producer");
  const int64_t start_micros = hooks.enabled() ? hooks.NowMicros() : 0;
  std::string item_id;
  Status st =
      fdb::RunTransaction(cluster_db.cluster, [&](fdb::Transaction& txn) {
        ck::QueueZone top_zone = OpenTopZoneFor(cluster_db, local_id, &txn);
        ck::QueuedItem queued;
        queued.id = local_id;
        queued.job_type = item.job_type;
        queued.priority = item.priority;
        queued.payload = item.payload;
        Result<std::string> r =
            top_zone.Enqueue(std::move(queued), vesting_delay_millis);
        QUICK_RETURN_IF_ERROR(r.status());
        item_id = *r;
        return Status::OK();
      });
  QUICK_RETURN_IF_ERROR(st);
  tenant_metrics_.OnEnqueued(cluster_db.id, 1);
  if (hooks.enabled()) {
    hooks.Record(item_id, stage::kEnqueued, start_micros, hooks.NowMicros(),
                 "local cluster=" + cluster_name +
                     " delay_ms=" + std::to_string(vesting_delay_millis));
  }
  return item_id;
}

Result<int64_t> Quick::PendingCount(const ck::DatabaseId& db_id) {
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  return fdb::RunTransactionResult<int64_t>(
      db.cluster, fdb::TransactionOptions{},
      [&](fdb::Transaction& txn, int64_t* out) {
        ck::QueueZone zone = OpenTenantZone(db, &txn);
        QUICK_ASSIGN_OR_RETURN(*out, zone.Count());
        return Status::OK();
      });
}

Result<int64_t> Quick::TopLevelCount(const std::string& cluster_name) {
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(cluster_name);
  if (cluster_db.cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  return fdb::RunTransactionResult<int64_t>(
      cluster_db.cluster, fdb::TransactionOptions{},
      [&](fdb::Transaction& txn, int64_t* out) {
        *out = 0;
        for (const std::string& shard : TopZoneNames(cluster_name)) {
          ck::QueueZone zone = ck_->OpenQueueZone(cluster_db, shard, &txn);
          QUICK_ASSIGN_OR_RETURN(int64_t n, zone.Count());
          *out += n;
        }
        return Status::OK();
      });
}

Status Quick::MoveTenant(const ck::DatabaseId& db_id,
                         const std::string& dest_cluster) {
  if (db_id.kind == ck::DatabaseKind::kCluster) {
    return Status::InvalidArgument("ClusterDBs are pinned and cannot move");
  }
  const std::optional<std::string> src_cluster =
      ck_->placement()->Get(db_id);
  if (!src_cluster.has_value()) {
    return Status::NotFound("database " + db_id.ToString() + " not placed");
  }
  if (*src_cluster == dest_cluster) return Status::OK();
  fdb::Database* dst = ck_->clusters()->Get(dest_cluster);
  if (dst == nullptr) {
    return Status::InvalidArgument("unknown cluster " + dest_cluster);
  }
  fdb::Database* src = ck_->clusters()->Get(*src_cluster);
  const std::string state_key = ck::MoveState::Key(db_id);
  const Pointer pointer{db_id, config_.queue_zone_name};

  // 1. Seal the tenant and take its pointer off the source's top-level
  //    queue, in ONE transaction. From this commit on, every enqueue and
  //    every consumer dequeue for the tenant reads the fence and backs
  //    off — and with the pointer gone, source consumers stop finding the
  //    queue at all. Racing writers that miss the fence conflict with this
  //    write and retry into seeing it.
  ck::MoveState seal;
  seal.phase = ck::MoveState::kSealed;
  seal.dest_cluster = dest_cluster;
  std::optional<ck::QueuedItem> src_pointer;
  QUICK_RETURN_IF_ERROR(fdb::RunTransaction(src, [&](fdb::Transaction& txn) {
    txn.Set(state_key, seal.Encode());
    const ck::DatabaseRef src_cluster_db = ck_->OpenClusterDb(*src_cluster);
    ck::QueueZone top_zone =
        OpenTopZoneFor(src_cluster_db, pointer.Key(), &txn);
    QUICK_ASSIGN_OR_RETURN(src_pointer, top_zone.Load(pointer.Key()));
    if (src_pointer.has_value()) {
      Status st = top_zone.Complete(pointer.Key());
      if (!st.ok() && !st.IsNotFound()) return st;
    }
    return Status::OK();
  }));

  // 2. Copy the database — including its queue zone and queued items —
  //    with the source frozen. (This simple path does not drain live item
  //    leases first; moves under active consumers go through
  //    control::TenantBalancer, which adds catch-up rounds and lease
  //    draining around the same fence.)
  QUICK_RETURN_IF_ERROR(ck_->CopyDatabaseData(db_id, dest_cluster));

  // 3. Re-create the pointer on the destination's top-level queue, after
  //    the data so a destination consumer finding it early sees a
  //    non-empty queue rather than GC'ing it (§6).
  if (src_pointer.has_value()) {
    QUICK_RETURN_IF_ERROR(
        fdb::RunTransaction(dst, [&](fdb::Transaction& txn) {
          const ck::DatabaseRef dst_cluster_db =
              ck_->OpenClusterDb(dest_cluster);
          ck::QueueZone top_zone =
              OpenTopZoneFor(dst_cluster_db, pointer.Key(), &txn);
          ck::QueuedItem copy = *src_pointer;
          copy.lease_id.clear();
          return top_zone.Enqueue(std::move(copy), /*vesting_delay=*/0)
              .status();
        }));
  }

  // 4. Flip placement so new enqueues land at the destination. The sealed
  //    fence satisfies CommitMove's queued-work guard.
  QUICK_RETURN_IF_ERROR(
      ck_->CommitMove(db_id, dest_cluster, config_.queue_zone_name));

  // 5. Delete the source data (the pointer went with the seal), then
  //    lower the fence. A crash in between leaves the fence up on the
  //    source — harmless, since placement already points elsewhere and
  //    the fence key lives outside the database subspace.
  QUICK_RETURN_IF_ERROR(ck_->DeleteDatabaseData(db_id, *src_cluster));
  return fdb::RunTransaction(src, [&](fdb::Transaction& txn) {
    txn.Clear(state_key);
    return Status::OK();
  });
}

}  // namespace quick::core
