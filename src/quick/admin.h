#ifndef QUICK_QUICK_ADMIN_H_
#define QUICK_QUICK_ADMIN_H_

#include <string>
#include <vector>

#include "quick/quick.h"

namespace quick::core {

/// Operational introspection over QuiCK's state (§2 "Operations and
/// monitoring", §3 "Querying outstanding work by user is inexpressible"
/// in external queuing systems — here it is a first-class query). All
/// reads are snapshot reads: inspection never aborts producers or
/// consumers.
class QuickAdmin {
 public:
  explicit QuickAdmin(Quick* quick) : quick_(quick) {}

  /// Per-tenant view: queue depth, earliest vesting time, oldest enqueue
  /// time, and the state of the tenant's pointer in Q_C.
  struct TenantQueueInfo {
    ck::DatabaseId db_id;
    std::string cluster;
    int64_t depth = 0;
    std::optional<int64_t> min_vesting_time;
    std::optional<int64_t> oldest_enqueue_time;
    int64_t vested_now = 0;
    bool pointer_exists = false;
    bool pointer_leased = false;
    int64_t pointer_vesting_time = 0;
    int64_t pointer_error_count = 0;
  };

  /// Per-cluster view of the top-level queue.
  struct ClusterQueueInfo {
    std::string cluster;
    int64_t top_level_entries = 0;
    int64_t pointers = 0;
    int64_t local_items = 0;
    int64_t vested_now = 0;
    int64_t leased_now = 0;
    std::optional<int64_t> oldest_pointer_last_active;
  };

  /// One row of the outstanding-work listing.
  struct OutstandingQueue {
    Pointer pointer;
    int64_t vesting_time = 0;
    bool leased = false;
    int64_t depth = 0;  // of the referenced queue zone
  };

  Result<TenantQueueInfo> InspectTenant(const ck::DatabaseId& db_id);

  Result<ClusterQueueInfo> InspectCluster(const std::string& cluster_name);

  /// The non-empty queues of a cluster (by pointer), with their depths —
  /// the per-tenant query external queuing systems cannot express (§3).
  Result<std::vector<OutstandingQueue>> ListOutstandingQueues(
      const std::string& cluster_name, int limit = 100);

  /// Human-readable multi-line report over every cluster.
  Result<std::string> RenderFleetReport();

 private:
  Quick* quick_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_ADMIN_H_
