#ifndef QUICK_QUICK_ADMIN_H_
#define QUICK_QUICK_ADMIN_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "quick/quick.h"

namespace quick::core {

/// Pluggable tenant-move driver. QuickAdmin::MoveTenant delegates here
/// when set, so operators get the orchestrated, resumable live migration
/// (control::TenantBalancer) through the same admin entry point; without
/// one it falls back to Quick::MoveTenant's stop-the-world move.
class MoveOrchestrator {
 public:
  virtual ~MoveOrchestrator() = default;
  virtual Status MoveTenant(const ck::DatabaseId& db_id,
                            const std::string& dest_cluster) = 0;
};

/// Operational introspection over QuiCK's state (§2 "Operations and
/// monitoring", §3 "Querying outstanding work by user is inexpressible"
/// in external queuing systems — here it is a first-class query). All
/// reads are snapshot reads: inspection never aborts producers or
/// consumers.
class QuickAdmin {
 public:
  explicit QuickAdmin(Quick* quick) : quick_(quick) {}

  /// Per-tenant view: queue depth, earliest vesting time, oldest enqueue
  /// time, and the state of the tenant's pointer in Q_C.
  struct TenantQueueInfo {
    ck::DatabaseId db_id;
    std::string cluster;
    int64_t depth = 0;
    std::optional<int64_t> min_vesting_time;
    std::optional<int64_t> oldest_enqueue_time;
    int64_t vested_now = 0;
    bool pointer_exists = false;
    bool pointer_leased = false;
    int64_t pointer_vesting_time = 0;
    int64_t pointer_error_count = 0;
    /// Items in the zone's dead-letter quarantine.
    int64_t dead_letters = 0;
  };

  /// Per-shard breakdown of a cluster's top-level queue (DESIGN.md §12):
  /// one row per shard zone, in shard order, so operators see stripe skew
  /// instead of one collapsed number.
  struct ShardQueueInfo {
    std::string zone;
    int64_t entries = 0;
    int64_t pointers = 0;
    int64_t local_items = 0;
    int64_t vested_now = 0;
  };

  /// Per-cluster view of the top-level queue.
  struct ClusterQueueInfo {
    std::string cluster;
    int64_t top_level_entries = 0;
    int64_t pointers = 0;
    int64_t local_items = 0;
    int64_t vested_now = 0;
    int64_t leased_now = 0;
    std::optional<int64_t> oldest_pointer_last_active;
    /// One entry per top-level shard (a single entry when unsharded).
    std::vector<ShardQueueInfo> shards;
  };

  /// One row of the outstanding-work listing.
  struct OutstandingQueue {
    Pointer pointer;
    int64_t vesting_time = 0;
    bool leased = false;
    int64_t depth = 0;  // of the referenced queue zone
  };

  Result<TenantQueueInfo> InspectTenant(const ck::DatabaseId& db_id);

  Result<ClusterQueueInfo> InspectCluster(const std::string& cluster_name);

  /// The non-empty queues of a cluster (by pointer), with their depths —
  /// the per-tenant query external queuing systems cannot express (§3).
  Result<std::vector<OutstandingQueue>> ListOutstandingQueues(
      const std::string& cluster_name, int limit = 100);

  /// Human-readable multi-line report over every cluster.
  Result<std::string> RenderFleetReport();

  /// Samples every cluster's per-shard top-level backlog and publishes it
  /// as ck.zone.top_backlog.<cluster>.<shard> gauges, the operator view
  /// of stripe skew (DESIGN.md §12). Snapshot reads; never aborts
  /// producers or consumers.
  Status PublishShardBacklog(MetricsRegistry* registry);

  // --- Dead-letter quarantine (operator drain; "no item is ever silently
  // lost" — every terminal failure lands here, and leaves only through
  // these explicit requeue/purge decisions). ---

  /// Dead-lettered items of a tenant's queue zone, oldest first.
  Result<std::vector<ck::DeadLetterItem>> ListDeadLetters(
      const ck::DatabaseId& db_id, int limit = 0);

  /// Number of dead-lettered items in a tenant's queue zone.
  Result<int64_t> DeadLetterCount(const ck::DatabaseId& db_id);

  /// Moves a dead-lettered item back into the tenant's live queue under
  /// its original id, payload, and priority — through the full enqueue
  /// protocol, so the Q_C pointer is recreated when missing and the item
  /// is immediately findable. Removal from the quarantine and re-enqueue
  /// commit in one transaction; the error count restarts at zero.
  Status RequeueDeadLetter(const ck::DatabaseId& db_id,
                           const std::string& item_id);

  /// Requeues every dead-lettered item of the tenant; returns how many.
  Result<int> RequeueAllDeadLetters(const ck::DatabaseId& db_id);

  /// Permanently discards a dead-lettered item (the only deliberate
  /// data-loss path, and it is explicit and logged in metrics).
  Status PurgeDeadLetter(const ck::DatabaseId& db_id,
                         const std::string& item_id);

  /// Dead-lettered local items (and corrupt pointers) across a cluster's
  /// top-level queue shards, oldest first per shard.
  Result<std::vector<ck::DeadLetterItem>> ListClusterDeadLetters(
      const std::string& cluster_name, int limit = 0);

  /// Requeues a dead-lettered local item into its top-level queue shard.
  Status RequeueClusterDeadLetter(const std::string& cluster_name,
                                  const std::string& item_id);

  /// Permanently discards a dead-lettered local item.
  Status PurgeClusterDeadLetter(const std::string& cluster_name,
                                const std::string& item_id);

  // --- Item-lifecycle traces (the per-item "where did my task go" query;
  // answers come from the in-process Tracer, so they cover items this
  // process and its consumers touched while tracing was enabled). ---

  /// The recorded span chain of a work item (or pointer key), in recording
  /// order. Empty when tracing is off or the trace was evicted.
  std::vector<Span> ItemTrace(const std::string& item_id) const;

  /// Human-readable rendering of ItemTrace: one line per span with
  /// relative timestamps, durations, actors, and details.
  std::string RenderTrace(const std::string& item_id) const;

  /// A whole saga's chain: the workflow-lifecycle spans recorded on the
  /// workflow id (wf_started / wf_step_start / wf_step_finish /
  /// wf_compensate / wf_done), in recording order. Each span's
  /// parent_trace names the step item that carried it — follow with
  /// ItemTrace(parent) for the queue-level story of that step.
  std::vector<Span> WorkflowTrace(const std::string& workflow_id) const;

  /// Renders WorkflowTrace plus the durable WorkflowRecord (state, step
  /// statuses, failure) and, per step item referenced by the chain, its
  /// own item trace — the "where did my saga go" query across items.
  std::string RenderWorkflowTrace(const ck::DatabaseId& db_id,
                                  const std::string& workflow_id) const;

  // --- Tenant placement. ---

  /// Registers the orchestrated move driver. Not thread-safe; call during
  /// setup.
  void SetMoveOrchestrator(MoveOrchestrator* orchestrator) {
    orchestrator_ = orchestrator;
  }

  /// Moves a tenant to `dest_cluster`: through the registered
  /// orchestrator when one is set, otherwise via Quick::MoveTenant.
  Status MoveTenant(const ck::DatabaseId& db_id,
                    const std::string& dest_cluster) {
    if (orchestrator_ != nullptr) {
      return orchestrator_->MoveTenant(db_id, dest_cluster);
    }
    return quick_->MoveTenant(db_id, dest_cluster);
  }

 private:
  Quick* quick_;
  MoveOrchestrator* orchestrator_ = nullptr;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_ADMIN_H_
