#include "quick/admin.h"

#include <algorithm>
#include <sstream>

#include "cloudkit/workflow_record.h"
#include "common/metrics.h"
#include "fdb/retry.h"
#include "quick/trace_hooks.h"

namespace quick::core {

Result<QuickAdmin::TenantQueueInfo> QuickAdmin::InspectTenant(
    const ck::DatabaseId& db_id) {
  ck::CloudKitService* ck = quick_->cloudkit();
  const ck::DatabaseRef db = ck->OpenDatabase(db_id);
  const ck::DatabaseRef cluster_db = ck->OpenClusterDb(db.cluster->name());
  const Pointer pointer{db_id, quick_->config().queue_zone_name};

  TenantQueueInfo info;
  info.db_id = db_id;
  info.cluster = db.cluster->name();
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
    QUICK_ASSIGN_OR_RETURN(info.depth, zone.Count());
    QUICK_ASSIGN_OR_RETURN(info.min_vesting_time, zone.MinVestingTime());
    QUICK_ASSIGN_OR_RETURN(info.dead_letters, zone.DeadLetterCount());
    // Oldest enqueue time + vested count need the records; peek them all
    // (snapshot) — inspection is an operator action, not a hot path.
    QUICK_ASSIGN_OR_RETURN(std::vector<ck::QueuedItem> vested,
                           zone.Peek(/*max_items=*/0));
    info.vested_now = static_cast<int64_t>(vested.size());
    QUICK_ASSIGN_OR_RETURN(std::vector<rl::Record> all,
                           zone.store()->ScanRecords());
    for (const rl::Record& rec : all) {
      QUICK_ASSIGN_OR_RETURN(ck::QueuedItem item,
                             ck::QueuedItem::FromRecord(rec));
      if (!info.oldest_enqueue_time.has_value() ||
          item.enqueue_time < *info.oldest_enqueue_time) {
        info.oldest_enqueue_time = item.enqueue_time;
      }
    }

    ck::QueueZone top = quick_->OpenTopZoneFor(cluster_db, pointer.Key(), &txn);
    QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> ptr,
                           top.Load(pointer.Key()));
    if (ptr.has_value()) {
      info.pointer_exists = true;
      info.pointer_leased = ptr->leased();
      info.pointer_vesting_time = ptr->vesting_time;
      info.pointer_error_count = ptr->error_count;
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  return info;
}

Result<QuickAdmin::ClusterQueueInfo> QuickAdmin::InspectCluster(
    const std::string& cluster_name) {
  ck::CloudKitService* ck = quick_->cloudkit();
  fdb::Database* cluster = ck->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  const ck::DatabaseRef cluster_db = ck->OpenClusterDb(cluster_name);
  ClusterQueueInfo info;
  info.cluster = cluster_name;
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    // Per-shard pass (DESIGN.md §12): each shard is scanned and summarized
    // on its own instead of collapsing every shard into one merged scan.
    info.shards.clear();
    const int64_t now = quick_->clock()->NowMillis();
    for (const std::string& shard : quick_->TopZoneNames(cluster_name)) {
      ShardQueueInfo row;
      row.zone = shard;
      ck::QueueZone top =
          quick_->cloudkit()->OpenQueueZone(cluster_db, shard, &txn);
      QUICK_ASSIGN_OR_RETURN(row.entries, top.Count());
      info.top_level_entries += row.entries;
      QUICK_ASSIGN_OR_RETURN(std::vector<rl::Record> shard_records,
                             top.store()->ScanRecords());
      for (const rl::Record& rec : shard_records) {
        QUICK_ASSIGN_OR_RETURN(ck::QueuedItem item,
                               ck::QueuedItem::FromRecord(rec));
        if (item.job_type == ck::kPointerJobType) {
          ++row.pointers;
          if (!info.oldest_pointer_last_active.has_value() ||
              item.last_active_time < *info.oldest_pointer_last_active) {
            info.oldest_pointer_last_active = item.last_active_time;
          }
        } else {
          ++row.local_items;
        }
        if (item.vesting_time <= now) ++row.vested_now;
        if (item.leased() && item.vesting_time > now) ++info.leased_now;
      }
      info.pointers += row.pointers;
      info.local_items += row.local_items;
      info.vested_now += row.vested_now;
      info.shards.push_back(std::move(row));
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  return info;
}

Result<std::vector<QuickAdmin::OutstandingQueue>>
QuickAdmin::ListOutstandingQueues(const std::string& cluster_name, int limit) {
  ck::CloudKitService* ck = quick_->cloudkit();
  fdb::Database* cluster = ck->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  const ck::DatabaseRef cluster_db = ck->OpenClusterDb(cluster_name);
  std::vector<OutstandingQueue> out;
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    out.clear();
    // Shard by shard, without merging the scans (DESIGN.md §12); the
    // limit spans the whole cluster listing.
    for (const std::string& shard : quick_->TopZoneNames(cluster_name)) {
      ck::QueueZone top =
          quick_->cloudkit()->OpenQueueZone(cluster_db, shard, &txn);
      QUICK_ASSIGN_OR_RETURN(std::vector<rl::Record> shard_records,
                             top.store()->ScanRecords());
      for (const rl::Record& rec : shard_records) {
        QUICK_ASSIGN_OR_RETURN(ck::QueuedItem item,
                               ck::QueuedItem::FromRecord(rec));
        if (item.job_type != ck::kPointerJobType) continue;
        Result<Pointer> pointer = Pointer::FromItem(item);
        if (!pointer.ok()) continue;  // corrupt pointers are skipped here
        OutstandingQueue row;
        row.pointer = *pointer;
        row.vesting_time = item.vesting_time;
        row.leased =
            item.leased() && item.vesting_time > quick_->clock()->NowMillis();
        // Depth from the referenced zone's count index (same cluster).
        const tup::Subspace zone_subspace =
            ck::CloudKitService::DatabaseSubspace(pointer->db_id)
                .Sub("z")
                .Sub(pointer->zone);
        ck::QueueZone zone(&txn, zone_subspace, quick_->clock());
        QUICK_ASSIGN_OR_RETURN(row.depth, zone.Count());
        out.push_back(std::move(row));
        if (limit > 0 && static_cast<int>(out.size()) >= limit) {
          return Status::OK();
        }
      }
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  return out;
}

Result<std::string> QuickAdmin::RenderFleetReport() {
  std::ostringstream os;
  os << "QuiCK fleet report\n";
  for (const std::string& name : quick_->cloudkit()->clusters()->names()) {
    QUICK_ASSIGN_OR_RETURN(ClusterQueueInfo info, InspectCluster(name));
    os << "  cluster " << info.cluster << ": " << info.top_level_entries
       << " top-level entries (" << info.pointers << " pointers, "
       << info.local_items << " local items), " << info.vested_now
       << " vested, " << info.leased_now << " leased\n";
    QUICK_ASSIGN_OR_RETURN(std::vector<OutstandingQueue> queues,
                           ListOutstandingQueues(name, 20));
    for (const OutstandingQueue& q : queues) {
      os << "    " << q.pointer.db_id.ToString() << " zone=" << q.pointer.zone
         << " depth=" << q.depth << (q.leased ? " [leased]" : "");
      QUICK_ASSIGN_OR_RETURN(TenantQueueInfo tenant,
                             InspectTenant(q.pointer.db_id));
      if (tenant.dead_letters > 0) {
        os << " dead_letters=" << tenant.dead_letters;
      }
      os << "\n";
    }
  }
  return os.str();
}

Status QuickAdmin::PublishShardBacklog(MetricsRegistry* registry) {
  ck::CloudKitService* ck = quick_->cloudkit();
  for (const std::string& cluster_name : ck->clusters()->names()) {
    fdb::Database* cluster = ck->clusters()->Get(cluster_name);
    if (cluster == nullptr) continue;
    const ck::DatabaseRef cluster_db = ck->OpenClusterDb(cluster_name);
    const std::vector<std::string> shards =
        quick_->TopZoneNames(cluster_name);
    Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      for (size_t i = 0; i < shards.size(); ++i) {
        ck::QueueZone top = ck->OpenQueueZone(cluster_db, shards[i], &txn);
        QUICK_ASSIGN_OR_RETURN(int64_t entries, top.Count());
        registry
            ->GetGauge("ck.zone.top_backlog." + cluster_name + "." +
                       std::to_string(i))
            ->Set(entries);
      }
      return Status::OK();
    });
    QUICK_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Result<std::vector<ck::DeadLetterItem>> QuickAdmin::ListDeadLetters(
    const ck::DatabaseId& db_id, int limit) {
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  std::vector<ck::DeadLetterItem> out;
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
    QUICK_ASSIGN_OR_RETURN(out, zone.ListDeadLetters(limit));
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  return out;
}

Result<int64_t> QuickAdmin::DeadLetterCount(const ck::DatabaseId& db_id) {
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  return fdb::RunTransactionResult<int64_t>(
      db.cluster, fdb::TransactionOptions{},
      [&](fdb::Transaction& txn, int64_t* out) {
        ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
        QUICK_ASSIGN_OR_RETURN(*out, zone.DeadLetterCount());
        return Status::OK();
      });
}

Status QuickAdmin::RequeueDeadLetter(const ck::DatabaseId& db_id,
                                     const std::string& item_id) {
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  const TraceHooks hooks(quick_->tracer(), quick_->clock(), "admin");
  const int64_t start_micros = hooks.enabled() ? hooks.NowMicros() : 0;
  EnqueueFollowUp follow_up;
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
    QUICK_ASSIGN_OR_RETURN(ck::DeadLetterItem dl,
                           zone.TakeDeadLetter(item_id));
    WorkItem item;
    item.id = dl.id;
    item.job_type = dl.job_type;
    item.payload = dl.payload;
    item.priority = dl.priority;
    return quick_
        ->EnqueueInTransaction(&txn, db, item, /*vesting_delay_millis=*/0,
                               &follow_up)
        .status();
  });
  QUICK_RETURN_IF_ERROR(st);
  if (hooks.enabled()) {
    // A birth stage: the item re-enters the live queue; its chain opens a
    // new incarnation that must reach its own terminal span.
    hooks.Record(item_id, stage::kDeadLetterRequeued, start_micros,
                 hooks.NowMicros(), "db=" + db_id.ToString());
  }
  quick_->ExecuteFollowUp(db, follow_up);
  MetricsRegistry::Default()->GetCounter("quick.deadletter.requeued")
      ->Increment();
  return Status::OK();
}

Result<int> QuickAdmin::RequeueAllDeadLetters(const ck::DatabaseId& db_id) {
  // Snapshot the ids first, then requeue each in its own bounded
  // transaction; items quarantined while the drain runs are picked up by
  // the operator's next drain.
  QUICK_ASSIGN_OR_RETURN(std::vector<ck::DeadLetterItem> items,
                         ListDeadLetters(db_id));
  int requeued = 0;
  for (const ck::DeadLetterItem& item : items) {
    Status st = RequeueDeadLetter(db_id, item.id);
    if (st.IsNotFound()) continue;  // purged/requeued concurrently
    QUICK_RETURN_IF_ERROR(st);
    ++requeued;
  }
  return requeued;
}

Status QuickAdmin::PurgeDeadLetter(const ck::DatabaseId& db_id,
                                   const std::string& item_id) {
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
    return zone.PurgeDeadLetter(item_id);
  });
  QUICK_RETURN_IF_ERROR(st);
  MetricsRegistry::Default()->GetCounter("quick.deadletter.purged")
      ->Increment();
  return Status::OK();
}

Result<std::vector<ck::DeadLetterItem>> QuickAdmin::ListClusterDeadLetters(
    const std::string& cluster_name, int limit) {
  ck::CloudKitService* ck = quick_->cloudkit();
  fdb::Database* cluster = ck->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  const ck::DatabaseRef cluster_db = ck->OpenClusterDb(cluster_name);
  std::vector<ck::DeadLetterItem> out;
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    out.clear();
    for (const std::string& shard : quick_->TopZoneNames(cluster_name)) {
      ck::QueueZone top = ck->OpenQueueZone(cluster_db, shard, &txn);
      QUICK_ASSIGN_OR_RETURN(std::vector<ck::DeadLetterItem> shard_items,
                             top.ListDeadLetters(limit));
      for (ck::DeadLetterItem& item : shard_items) {
        out.push_back(std::move(item));
        if (limit > 0 && static_cast<int>(out.size()) >= limit) {
          return Status::OK();
        }
      }
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  return out;
}

Status QuickAdmin::RequeueClusterDeadLetter(const std::string& cluster_name,
                                            const std::string& item_id) {
  ck::CloudKitService* ck = quick_->cloudkit();
  fdb::Database* cluster = ck->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  const ck::DatabaseRef cluster_db = ck->OpenClusterDb(cluster_name);
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    // Quarantine keeps a local item in its own shard, so the shard of the
    // dead letter is re-derivable from the id, like any top-level entry.
    ck::QueueZone top = quick_->OpenTopZoneFor(cluster_db, item_id, &txn);
    QUICK_ASSIGN_OR_RETURN(ck::DeadLetterItem dl, top.TakeDeadLetter(item_id));
    ck::QueuedItem item;
    item.id = dl.id;
    item.job_type = dl.job_type;
    item.payload = dl.payload;
    item.priority = dl.priority;
    item.db_key = dl.db_key;
    return top.Enqueue(std::move(item), /*vesting_delay_millis=*/0).status();
  });
  QUICK_RETURN_IF_ERROR(st);
  const TraceHooks hooks(quick_->tracer(), quick_->clock(), "admin");
  hooks.Mark(item_id, stage::kDeadLetterRequeued, "cluster=" + cluster_name);
  MetricsRegistry::Default()->GetCounter("quick.deadletter.requeued")
      ->Increment();
  return Status::OK();
}

Status QuickAdmin::PurgeClusterDeadLetter(const std::string& cluster_name,
                                          const std::string& item_id) {
  ck::CloudKitService* ck = quick_->cloudkit();
  fdb::Database* cluster = ck->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  const ck::DatabaseRef cluster_db = ck->OpenClusterDb(cluster_name);
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone top = quick_->OpenTopZoneFor(cluster_db, item_id, &txn);
    return top.PurgeDeadLetter(item_id);
  });
  QUICK_RETURN_IF_ERROR(st);
  MetricsRegistry::Default()->GetCounter("quick.deadletter.purged")
      ->Increment();
  return Status::OK();
}

std::vector<Span> QuickAdmin::ItemTrace(const std::string& item_id) const {
  Tracer* tracer = quick_->tracer();
  if (tracer == nullptr) return {};
  return tracer->TraceOf(item_id);
}

std::vector<Span> QuickAdmin::WorkflowTrace(
    const std::string& workflow_id) const {
  Tracer* tracer = quick_->tracer();
  if (tracer == nullptr) return {};
  return tracer->TraceOf(workflow_id);
}

std::string QuickAdmin::RenderWorkflowTrace(
    const ck::DatabaseId& db_id, const std::string& workflow_id) const {
  std::ostringstream os;
  os << "workflow " << workflow_id;

  // Durable state first: the record survives tracer eviction and process
  // restarts, so this line is authoritative even when the spans are gone.
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  const std::string key = ck::WorkflowRecord::Key(db_id, workflow_id);
  std::optional<ck::WorkflowRecord> record;
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    record.reset();
    QUICK_ASSIGN_OR_RETURN(std::optional<std::string> raw, txn.Get(key));
    if (raw.has_value()) record = ck::WorkflowRecord::Decode(*raw);
    return Status::OK();
  });
  if (st.ok() && record.has_value()) {
    os << " state=" << ck::WorkflowRecord::StateName(record->state)
       << " saga=" << record->saga << " steps=" << record->step_status;
    if (!record->failure.empty()) os << " failure=\"" << record->failure
                                    << "\"";
  } else {
    os << " (no record)";
  }
  os << "\n";

  const std::vector<Span> spans = WorkflowTrace(workflow_id);
  if (spans.empty()) {
    os << "  (no spans — tracing off or evicted)\n";
    return os.str();
  }
  const int64_t t0 = spans.front().start_micros;
  std::vector<std::string> step_items;
  for (const Span& s : spans) {
    os << "  +" << (s.start_micros - t0) << "us " << s.name << " ["
       << s.actor << "]";
    const int64_t dur = s.end_micros - s.start_micros;
    if (dur > 0) os << " dur=" << dur << "us";
    if (!s.detail.empty()) os << " " << s.detail;
    if (!s.parent_trace.empty()) {
      os << " item=" << s.parent_trace;
      if (std::find(step_items.begin(), step_items.end(), s.parent_trace) ==
          step_items.end()) {
        step_items.push_back(s.parent_trace);
      }
    }
    os << "\n";
  }
  // The queue-level story of every step item the chain touched.
  for (const std::string& item_id : step_items) {
    std::istringstream item_trace(RenderTrace(item_id));
    std::string line;
    while (std::getline(item_trace, line)) os << "  | " << line << "\n";
  }
  return os.str();
}

std::string QuickAdmin::RenderTrace(const std::string& item_id) const {
  const std::vector<Span> spans = ItemTrace(item_id);
  std::ostringstream os;
  os << "trace " << item_id << " (" << spans.size() << " spans)\n";
  if (spans.empty()) return os.str();
  const int64_t t0 = spans.front().start_micros;
  for (const Span& s : spans) {
    os << "  +" << (s.start_micros - t0) << "us " << s.name << " ["
       << s.actor << "]";
    const int64_t dur = s.end_micros - s.start_micros;
    if (dur > 0) os << " dur=" << dur << "us";
    if (!s.detail.empty()) os << " " << s.detail;
    if (!s.parent_trace.empty()) os << " parent=" << s.parent_trace;
    os << "\n";
  }
  return os.str();
}

}  // namespace quick::core
