#ifndef QUICK_QUICK_CONSUMER_H_
#define QUICK_QUICK_CONSUMER_H_

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/random.h"
#include "fdb/executor.h"
#include "fdb/future.h"
#include "quick/alerts.h"
#include "quick/cluster_health.h"
#include "quick/config.h"
#include "quick/job_registry.h"
#include "quick/lease_cache.h"
#include "quick/quick.h"
#include "quick/stats.h"
#include "quick/trace_hooks.h"

namespace quick::core {

/// One QuiCK consumer process (§6): a Scanner thread round-robining over
/// the top-level queues of its assigned clusters (Algorithm 1), a pool of
/// Manager threads leasing pointers and batch-dequeuing work items
/// (Algorithm 2), a pool of Worker threads executing items with dynamic
/// lease extension and retry policies (Algorithm 3), and a lease-extender
/// thread.
///
/// Three driving modes:
///  - Start()/Stop(): real threads, used by benchmarks and examples.
///  - RunOnePass()/ProcessTopItem(): synchronous, single-threaded steps for
///    deterministic tests (everything, including work items, runs inline on
///    the calling thread).
///  - Start() with config.async_pipeline: the Manager pool is replaced by a
///    pipelined state machine (DESIGN.md §11). Pointer leases are batched
///    across Q_C pointers per transaction, commits ride the cluster's async
///    group-commit pipeline (Database::CommitAsync), and a bounded window
///    of in-flight transaction chains — hundreds per consumer — overlaps
///    the commit RTTs that the synchronous pipeline serializes. The
///    Scanner applies backpressure when the window fills.
class Consumer {
 public:
  /// `election_cache` enables the dynamic election of one sequential
  /// scanner per top-level queue (§6); pass nullptr to use
  /// config.sequential statically.
  Consumer(Quick* quick, std::vector<std::string> cluster_names,
           JobRegistry* registry, ConsumerConfig config,
           std::string consumer_id = "", LeaseCache* election_cache = nullptr);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Spawns scanner/manager/worker/extender threads.
  void Start();

  /// Stops all threads; safe to call twice. In-flight leases are simply
  /// abandoned (they expire, and other consumers take over — the
  /// fault-tolerance story of §5).
  void Stop();

  bool running() const { return running_.load(); }

  /// Synchronous Algorithm 1 body for one cluster: peeks, selects, and
  /// processes every selected top-level item inline. Returns the number of
  /// top-level items processed.
  Result<int> RunOnePass(const std::string& cluster_name);

  /// Synchronous Algorithm 2/3 for one top-level item (pointer or local).
  Status ProcessTopItem(const std::string& cluster_name,
                        const std::string& item_id);

  ConsumerStats& stats() { return stats_; }
  const std::string& id() const { return id_; }
  const ConsumerConfig& config() const { return config_; }

  /// Per-cluster health tracking (circuit breakers); the Scanner consults
  /// it to skip clusters that look down (§5's graceful degradation under
  /// partial outages).
  ClusterHealth& health() { return health_; }

  /// Routes operational alerts (repeated failures, drops, breaker
  /// transitions) to `sink`. Call before Start(); the sink must outlive
  /// the consumer.
  void SetAlertSink(AlertSink* sink) {
    alert_sink_ = sink;
    health_.SetAlertSink(sink);
  }

  /// Chaos hook: freezes this consumer as if its process died — every
  /// subsequent scan, dequeue, execution, completion, and lease extension
  /// becomes a no-op, so leases it holds are simply abandoned and expire
  /// (the §5 fault-tolerance story: other consumers take over). Unlike
  /// Stop() this can fire mid-item from a handler, leaving work genuinely
  /// half-done. Irreversible for this instance.
  void SimulateCrash() { crashed_.store(true); }
  bool crashed() const { return crashed_.load(); }

 private:
  struct TopJob {
    std::string cluster;
    std::string item_id;
  };

  struct WorkerJob {
    std::string cluster;
    ck::DatabaseId db_id;
    std::string zone_name;
    tup::Subspace zone_subspace;
    /// The zone's schema (FIFO zones maintain an arrival index that every
    /// item write must keep consistent).
    bool fifo_zone = false;
    ck::LeasedItem leased;
    std::shared_ptr<std::atomic<bool>> lease_lost;
    std::shared_ptr<const JobRegistry::Entry> entry;  // may be null
    bool throttle_held = false;
    /// Finish (complete/requeue/quarantine) through the async pipeline
    /// instead of a blocking transaction on the worker thread.
    bool async_finish = false;
    /// What the handler produced on its final attempt: continuations,
    /// outbox effects, and the same-transaction hook ride the successful
    /// Complete (Gray's queued-transaction pattern).
    WorkResult result;
    /// Produced by the entry's TerminalHandler when the item is headed for
    /// a terminal failure; its extras ride the quarantine/drop transaction
    /// (saga compensation launch).
    WorkResult terminal_result;
  };

  /// One pointer surviving the read phase of a batched lease transaction.
  struct LeasedPointer {
    ck::QueuedItem before;
    std::string lease_id;
  };

  // --- Algorithm 1 ---
  void ScannerLoop();
  /// One peek+select+dispatch round; returns number dispatched.
  Result<int> ScanClusterOnce(const std::string& cluster_name,
                              bool inline_processing);
  /// Shared peek + in-flight filter + selection (Alg. 1 lines 6–9); the
  /// returned ids are NOT yet marked in flight. Records scan_micros.
  std::vector<std::string> PeekAndSelect(fdb::Database* cluster,
                                         const std::string& cluster_name);
  /// Per-(cluster, shard) sequential-scanner election (§6, DESIGN.md §12).
  /// `shard_zone` is the top-level shard's zone name; unsharded clusters
  /// keep the legacy per-cluster key.
  bool IsSequential(const std::string& cluster_name,
                    const std::string& shard_zone);

  /// The shards of `cluster_name` this consumer visits this scan
  /// (DESIGN.md §12): with striping, the stripe rendezvous hashing assigns
  /// to this consumer given the current LeaseCache membership, plus at
  /// most one stolen foreign shard; otherwise every shard. Visit order is
  /// rotated by a random offset so no shard is systematically first.
  struct ShardPlan {
    std::vector<std::string> visit;
    int owned = 0;   // stripe size (visit minus stolen)
    int stolen = 0;  // 1 when a foreign shard was added this scan
  };
  ShardPlan PlanShards(const std::string& cluster_name);
  int64_t MembershipTtlMillis() const {
    if (config_.membership_ttl_millis > 0) return config_.membership_ttl_millis;
    return std::max<int64_t>(1000, 4 * config_.idle_sleep_millis);
  }

  // --- Algorithm 2 ---
  Status ProcessTopItemImpl(const std::string& cluster_name,
                            const std::string& item_id,
                            bool inline_processing);
  /// Obtain-lease transaction; returns the lease id or a collision error.
  Result<std::pair<ck::QueuedItem, std::string>> LeaseTopItem(
      fdb::Database* cluster, const ck::DatabaseRef& cluster_db,
      const std::string& item_id);
  Status HandlePointer(const std::string& cluster_name,
                       const ck::QueuedItem& pointer_item,
                       const std::string& lease_id, bool inline_processing);
  /// A1 ablation: dequeue directly without a pointer lease (item-level
  /// contention, ATF-style).
  Status HandlePointerItemLevel(const std::string& cluster_name,
                                const ck::QueuedItem& pointer_item,
                                bool inline_processing);
  Status RequeueOrGcPointer(const std::string& cluster_name,
                            const ck::QueuedItem& pointer_item,
                            const std::string& lease_id, bool found_items,
                            std::optional<int64_t> min_vesting,
                            const tup::Subspace& zone_subspace);

  // --- Algorithm 3 ---
  void DispatchWorkerJob(WorkerJob job, bool inline_processing);
  void ProcessWorkItem(WorkerJob job);
  Status FinishItem(const WorkerJob& job, const Status& final_status);
  /// Terminal failure (permanent error, retry exhaustion, unknown job
  /// type): quarantines or — legacy mode — deletes the item, fenced by the
  /// job's lease so an expired-lease consumer can never perform a terminal
  /// transition on an item another consumer has retaken.
  Status FinishTerminalFailure(const WorkerJob& job,
                               const Status& final_status,
                               const RetryPolicy& policy);
  /// True when `result` carries anything the finish transaction must apply.
  static bool HasExtras(const WorkResult& result) {
    return result.txn_hook != nullptr || !result.continuations.empty() ||
           !result.effects.empty();
  }
  /// Applies a WorkResult's extras inside the finish transaction `txn`,
  /// after the (non-fenced) queue transition: runs the txn_hook, enqueues
  /// every continuation — through the full two-part enqueue protocol for
  /// tenant items, directly into the top-level queue for local items — and
  /// appends the outbox rows. Out-params are reset on entry (transaction
  /// bodies re-run on conflict).
  Status ApplyResultExtras(fdb::Transaction& txn, const WorkerJob& job,
                           const WorkResult& result,
                           std::vector<EnqueueFollowUp>* follow_ups,
                           std::vector<std::string>* continuation_ids);
  /// Post-commit bookkeeping for applied extras: stats, continuation birth
  /// spans, tenant metrics, and the enqueues' best-effort follow-ups.
  void AfterResultExtras(const WorkerJob& job, const WorkResult& result,
                         const std::vector<EnqueueFollowUp>& follow_ups,
                         const std::vector<std::string>& continuation_ids);

  // --- Async pipelined mode (DESIGN.md §11) ---
  bool AsyncMode() const { return config_.async_pipeline && exec_ != nullptr; }
  void AsyncScannerLoop();
  /// One async scan round: peek+select, then dispatch the selection as
  /// batched lease transactions into the in-flight window (blocking for
  /// window slots — the backpressure point). Returns pointers dispatched.
  Result<int> AsyncScanClusterOnce(const std::string& cluster_name);
  /// Issues one batched lease transaction over `ids` (all already marked
  /// in flight; caller holds one window slot, released when the commit
  /// resolves). Reads and lease writes for every pointer share the
  /// transaction, so one commit RTT covers the whole batch.
  void AsyncLeaseBatch(const std::string& cluster_name,
                       std::vector<std::string> ids);
  void OnLeaseBatchCommitted(const std::string& cluster_name,
                             std::vector<LeasedPointer> survivors,
                             int64_t lease_start, const Status& commit);
  /// Async Algorithm 2 for one leased pointer. Caller holds one window
  /// slot and the pointer's in-flight mark; the chain releases both when
  /// the requeue/GC step resolves.
  void AsyncHandlePointer(const std::string& cluster_name,
                          const ck::QueuedItem& pointer_item,
                          const std::string& lease_id);
  void AsyncRequeueOrGcPointer(const std::string& cluster_name,
                               const ck::QueuedItem& pointer_item,
                               const std::string& lease_id, bool found_items,
                               std::optional<int64_t> min_vesting,
                               const tup::Subspace& zone_subspace,
                               const std::string& inflight_key);
  /// Async transition out of processing (FinishItem's pipeline twin): the
  /// worker thread hands the commit to the window and moves on.
  void AsyncFinishItem(WorkerJob job, const Status& final_status);
  void AsyncFinishTerminalFailure(std::shared_ptr<WorkerJob> job,
                                  const Status& final_status,
                                  const RetryPolicy& policy);
  /// Scanner-side window admission: blocks (counting backpressure stalls)
  /// until a slot frees; false on shutdown.
  bool AcquireWindowSlot();
  /// Unconditional slot accounting for continuation transactions — a chain
  /// mid-flight must never deadlock waiting on its own window.
  void BeginTxn() { inflight_txns_.fetch_add(1, std::memory_order_relaxed); }
  void EndTxn() { inflight_txns_.fetch_sub(1, std::memory_order_acq_rel); }

  // Lease extender.
  void ExtenderLoop();
  void ExtendOnce();

  // Bookkeeping.
  fdb::Database* Cluster(const std::string& name);
  std::string InFlightKey(const std::string& cluster,
                          const std::string& id) const {
    return cluster + "|" + id;
  }
  bool MarkInFlight(const std::string& key);
  void UnmarkInFlight(const std::string& key);
  bool TryAcquireThrottle(const std::string& job_type, int max_concurrent);
  void ReleaseThrottle(const std::string& job_type);

  fdb::TransactionOptions PeekOptions() const {
    fdb::TransactionOptions topts;
    if (config_.relaxed_reads_for_peek) {
      topts.use_cached_read_version = true;
      topts.causal_read_risky = true;
    }
    return topts;
  }

  void RaiseAlert(Alert::Kind kind, const WorkerJob& job,
                  int64_t error_count, const std::string& detail);

  Quick* quick_;
  JobRegistry* registry_;
  AlertSink* alert_sink_ = nullptr;
  ConsumerConfig config_;
  std::string id_;
  std::vector<std::string> clusters_;
  LeaseCache* election_;
  ConsumerStats stats_;
  ClusterHealth health_;
  /// Span recorder bound to this consumer's id; captures quick_->tracer()
  /// at construction (set_tracer is setup-time only).
  TraceHooks hooks_;
  Random scanner_rng_;

  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  std::vector<std::thread> threads_;
  std::unique_ptr<BlockingQueue<TopJob>> manager_queue_;
  std::unique_ptr<BlockingQueue<WorkerJob>> worker_queue_;

  /// Async pipeline: continuation executor, chain cancellation (armed by
  /// Stop()), and the in-flight transaction window counter.
  std::unique_ptr<fdb::ThreadPoolExecutor> exec_;
  fdb::CancelToken cancel_;
  std::atomic<int> inflight_txns_{0};

  std::mutex inflight_mu_;
  std::set<std::string> in_flight_;

  /// Last computed stripe size per cluster, for the shards_owned gauge.
  std::mutex stripe_mu_;
  std::map<std::string, int> owned_shards_;
  /// Process-wide scanner metrics (quick.scanner.*): the steals counter is
  /// shared across consumers; the stripe-size gauge is per consumer.
  Counter* steals_metric_;
  Gauge* shards_owned_gauge_;

  std::mutex throttle_mu_;
  std::map<std::string, int> throttle_counts_;

  struct ExtensionEntry {
    std::string cluster;
    tup::Subspace zone_subspace;
    bool fifo_zone = false;
    std::string item_id;
    std::string lease_id;
    std::shared_ptr<std::atomic<bool>> lease_lost;
  };
  std::mutex ext_mu_;
  std::map<std::string, ExtensionEntry> extensions_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_CONSUMER_H_
