#ifndef QUICK_QUICK_TENANT_METRICS_H_
#define QUICK_QUICK_TENANT_METRICS_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "cloudkit/database_id.h"
#include "common/metrics.h"

namespace quick::core {

/// Per-tenant enqueue/dequeue/error counters published to a
/// MetricsRegistry under "ck.tenant.<signal>.<tenant>", where <tenant> is
/// DatabaseId::ToString() ("app/private/user", "app/public",
/// "app/cluster/name" — no control characters, so JSON/Prometheus export
/// stays clean). These are the real signals control::LoadMonitor folds
/// into load scores, instead of scraping stats structs.
///
/// Counter pointers are cached per tenant behind one mutex; the counters
/// themselves are atomics, so the steady-state cost is one map lookup.
class TenantMetrics {
 public:
  static constexpr const char* kEnqueuedPrefix = "ck.tenant.enqueued.";
  static constexpr const char* kDequeuedPrefix = "ck.tenant.dequeued.";
  static constexpr const char* kErrorsPrefix = "ck.tenant.errors.";

  explicit TenantMetrics(MetricsRegistry* registry = MetricsRegistry::Default())
      : registry_(registry) {}

  void OnEnqueued(const ck::DatabaseId& id, int64_t n) {
    Cells(id)->enqueued->Increment(n);
  }
  void OnDequeued(const ck::DatabaseId& id, int64_t n) {
    Cells(id)->dequeued->Increment(n);
  }
  void OnError(const ck::DatabaseId& id, int64_t n) {
    Cells(id)->errors->Increment(n);
  }

 private:
  struct Cell {
    Counter* enqueued;
    Counter* dequeued;
    Counter* errors;
  };

  const Cell* Cells(const ck::DatabaseId& id) {
    const std::string key = id.ToString();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cells_.find(key);
    if (it == cells_.end()) {
      Cell cell{registry_->GetCounter(kEnqueuedPrefix + key),
                registry_->GetCounter(kDequeuedPrefix + key),
                registry_->GetCounter(kErrorsPrefix + key)};
      it = cells_.emplace(key, cell).first;
    }
    return &it->second;
  }

  MetricsRegistry* registry_;
  std::mutex mu_;
  std::unordered_map<std::string, Cell> cells_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_TENANT_METRICS_H_
