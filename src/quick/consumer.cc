#include "quick/consumer.h"

#include <algorithm>
#include <cmath>

#include "cloudkit/migration_state.h"
#include "cloudkit/outbox.h"
#include "common/logging.h"
#include "fdb/retry.h"

namespace quick::core {

Consumer::Consumer(Quick* quick, std::vector<std::string> cluster_names,
                   JobRegistry* registry, ConsumerConfig config,
                   std::string consumer_id, LeaseCache* election_cache)
    : quick_(quick),
      registry_(registry),
      config_(config),
      id_(consumer_id.empty() ? Random::ThreadLocal().NextUuid()
                              : std::move(consumer_id)),
      clusters_(std::move(cluster_names)),
      election_(election_cache),
      health_(config_.breaker, quick->clock(), id_),
      hooks_(quick->tracer(), quick->clock(), id_),
      scanner_rng_(std::hash<std::string>{}(id_)),
      steals_metric_(
          MetricsRegistry::Default()->GetCounter("quick.scanner.steals")),
      shards_owned_gauge_(MetricsRegistry::Default()->GetGauge(
          "quick.scanner.shards_owned." + id_)) {}

Consumer::~Consumer() { Stop(); }

fdb::Database* Consumer::Cluster(const std::string& name) {
  return quick_->cloudkit()->clusters()->Get(name);
}

void Consumer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;

  if (config_.async_pipeline) {
    // Pipelined mode (DESIGN.md §11): no Manager pool — lease, dequeue,
    // and finish transactions live in the in-flight window and their
    // continuations run on the executor; Workers still execute handler
    // code on real threads (handlers are arbitrary blocking code). The
    // worker queue is sized to the window so a burst of dequeues does not
    // stall completions.
    cancel_ = fdb::CancelToken();
    exec_ = std::make_unique<fdb::ThreadPoolExecutor>(
        std::max(config_.async_executor_threads, 1), quick_->clock());
    worker_queue_ = std::make_unique<BlockingQueue<WorkerJob>>(
        std::max<size_t>(static_cast<size_t>(config_.num_worker_threads) * 2,
                         static_cast<size_t>(
                             std::max(config_.max_inflight_txns, 1))));
    threads_.emplace_back([this] { AsyncScannerLoop(); });
    for (int i = 0; i < config_.num_worker_threads; ++i) {
      threads_.emplace_back([this] {
        while (auto job = worker_queue_->Pop()) {
          ProcessWorkItem(*std::move(job));
        }
      });
    }
    threads_.emplace_back([this] { ExtenderLoop(); });
    return;
  }

  manager_queue_ = std::make_unique<BlockingQueue<TopJob>>(
      static_cast<size_t>(config_.num_manager_threads) * 2);
  worker_queue_ = std::make_unique<BlockingQueue<WorkerJob>>(
      static_cast<size_t>(config_.num_worker_threads) * 2);

  threads_.emplace_back([this] { ScannerLoop(); });
  for (int i = 0; i < config_.num_manager_threads; ++i) {
    threads_.emplace_back([this] {
      while (auto job = manager_queue_->Pop()) {
        (void)ProcessTopItemImpl(job->cluster, job->item_id,
                                 /*inline_processing=*/false);
      }
    });
  }
  for (int i = 0; i < config_.num_worker_threads; ++i) {
    threads_.emplace_back([this] {
      while (auto job = worker_queue_->Pop()) {
        ProcessWorkItem(*std::move(job));
      }
    });
  }
  threads_.emplace_back([this] { ExtenderLoop(); });
}

void Consumer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  // Stop chains from re-arming (retries, new steps); in-flight commits
  // still resolve — a cancelled chain completes with kCancelled rather
  // than vanishing, so the window below genuinely drains.
  cancel_.Cancel();
  if (manager_queue_) manager_queue_->Close();
  if (worker_queue_) worker_queue_->Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Drain the in-flight window before tearing down the executor: every
  // chain guarantees an EndTxn on every path (success, error, cancel), and
  // SleepMillis advances a ManualClock so scheduled re-arms come due.
  while (inflight_txns_.load(std::memory_order_acquire) > 0) {
    quick_->clock()->SleepMillis(1);
  }
  if (exec_ != nullptr) {
    exec_->Shutdown();
    exec_.reset();
  }
}

// ---------------------------------------------------------------------------
// Algorithm 1: Scanner.
// ---------------------------------------------------------------------------

void Consumer::ScannerLoop() {
  std::vector<std::string> order = clusters_;
  while (running_.load()) {
    // shuffle(CIDS): random visiting order each round.
    std::shuffle(order.begin(), order.end(), scanner_rng_.engine());
    int dispatched_this_round = 0;
    for (const std::string& cluster : order) {
      if (!running_.load()) break;
      int processed = 0;
      while (running_.load() && processed < config_.processing_bound) {
        Result<int> n = ScanClusterOnce(cluster, /*inline_processing=*/false);
        if (!n.ok() || *n == 0) break;
        processed += *n;
        dispatched_this_round += *n;
      }
    }
    if (dispatched_this_round == 0) {
      quick_->clock()->SleepMillis(config_.idle_sleep_millis);
    }
  }
}

bool Consumer::IsSequential(const std::string& cluster_name,
                            const std::string& shard_zone) {
  if (election_ == nullptr) return config_.sequential;
  const int64_t ttl =
      std::max<int64_t>(1000, 4 * config_.idle_sleep_millis);
  // Unsharded clusters keep the legacy per-cluster election key; sharded
  // ones elect one sequential scanner per (cluster, shard) so every shard
  // has its own no-starvation scanner (DESIGN.md §12).
  const std::string key =
      shard_zone == quick_->config().top_zone_name
          ? "quick-seq|" + cluster_name
          : "quick-seq|" + cluster_name + "|" + shard_zone;
  return election_->TryAcquire(key, id_, ttl);
}

Consumer::ShardPlan Consumer::PlanShards(const std::string& cluster_name) {
  ShardPlan plan;
  std::vector<std::string> all = quick_->TopZoneNames(cluster_name);
  const bool striped =
      config_.striped_scanners && election_ != nullptr && all.size() > 1;
  if (!striped) {
    plan.owned = static_cast<int>(all.size());
    plan.visit = std::move(all);
  } else {
    // Announce this consumer to the cluster's membership group, then split
    // the shards by rendezvous (HRW) hashing over the live members: every
    // consumer computes the same owner for every shard from the same
    // membership view, with no coordinator. A member that crashes stops
    // announcing and drops out at TTL expiry; its shards re-rendezvous to
    // the survivors — until then, work-stealing keeps them from starving.
    const std::string group = "quick-stripe|" + cluster_name;
    election_->Announce(group, id_, MembershipTtlMillis());
    const std::vector<std::string> members = election_->Members(group);
    std::vector<std::string> foreign;
    for (std::string& shard : all) {
      const std::string* owner = nullptr;
      size_t best = 0;
      for (const std::string& m : members) {
        const size_t h = std::hash<std::string>{}(m + "|" + shard);
        if (owner == nullptr || h > best || (h == best && m < *owner)) {
          best = h;
          owner = &m;
        }
      }
      if (owner != nullptr && *owner == id_) {
        plan.visit.push_back(std::move(shard));
      } else {
        foreign.push_back(std::move(shard));
      }
    }
    plan.owned = static_cast<int>(plan.visit.size());
    // Work-stealing: a consumer with an empty stripe (more consumers than
    // shards) always peeks one foreign shard; otherwise it steals with
    // probability steal_probability, bounding how long a dead owner's
    // shard waits at (steal_probability * scan rate) across the fleet.
    if (!foreign.empty() &&
        (plan.visit.empty() ||
         scanner_rng_.NextDouble() < config_.steal_probability)) {
      plan.visit.push_back(
          std::move(foreign[scanner_rng_.Uniform(foreign.size())]));
      plan.stolen = 1;
      stats_.steals.Increment();
      steals_metric_->Increment();
    }
  }
  // Rotate the starting shard so no shard is systematically peeked (and
  // thus selected) first when the peek budget runs out mid-pass.
  if (plan.visit.size() > 1) {
    std::rotate(plan.visit.begin(),
                plan.visit.begin() + scanner_rng_.Uniform(plan.visit.size()),
                plan.visit.end());
  }
  {
    std::lock_guard<std::mutex> lock(stripe_mu_);
    owned_shards_[cluster_name] = plan.owned;
    int64_t total = 0;
    for (const auto& [c, n] : owned_shards_) total += n;
    stats_.shards_owned.store(total, std::memory_order_relaxed);
    shards_owned_gauge_->Set(total);
  }
  return plan;
}

Result<int> Consumer::ScanClusterOnce(const std::string& cluster_name,
                                      bool inline_processing) {
  if (crashed_.load()) return 0;
  fdb::Database* cluster = Cluster(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  // Open-circuit cluster: skip instead of burning retry budgets against a
  // cluster that looks down; ShouldSkip lets the half-open probe through
  // when the breaker's open duration has elapsed.
  if (health_.ShouldSkip(cluster_name)) {
    stats_.scans_skipped_breaker.Increment();
    return 0;
  }
  stats_.scans.Increment();

  // In threaded mode, peek only when Managers and Workers have
  // insufficient tasks (Alg. 1 line 5): scanning is pointless — and, at
  // scale, expensive — while the pipeline is still full.
  if (!inline_processing && worker_queue_ != nullptr) {
    while (running_.load() &&
           (!manager_queue_->Empty() ||
            worker_queue_->Size() >=
                2 * static_cast<size_t>(config_.num_worker_threads))) {
      quick_->clock()->SleepMillis(1);
    }
    if (!running_.load()) return 0;
  }

  std::vector<std::string> selected = PeekAndSelect(cluster, cluster_name);

  int dispatched = 0;
  for (const std::string& id : selected) {
    const std::string key = InFlightKey(cluster_name, id);
    if (!MarkInFlight(key)) continue;
    ++dispatched;
    if (inline_processing) {
      (void)ProcessTopItemImpl(cluster_name, id, true);
    } else {
      if (!manager_queue_->Push(TopJob{cluster_name, id})) {
        UnmarkInFlight(key);
        --dispatched;
        break;  // shutting down
      }
    }
  }
  return dispatched;
}

std::vector<std::string> Consumer::PeekAndSelect(
    fdb::Database* cluster, const std::string& cluster_name) {
  // Peek: snapshot scan of the vesting index only (ids, not records), with
  // relaxed read-version handling (§6 optimizations). With a sharded
  // top-level queue, only the shards in this consumer's plan are peeked
  // (its stripe plus at most one stolen shard; all shards when unstriped),
  // each capped at an equal split of peek_max so no shard can crowd the
  // others out of the peek budget, in rotated order.
  const int64_t scan_start = quick_->clock()->NowMicros();
  const ck::DatabaseRef cluster_db =
      quick_->cloudkit()->OpenClusterDb(cluster_name);
  const ShardPlan plan = PlanShards(cluster_name);
  if (plan.visit.empty()) {
    stats_.scan_micros.Record(quick_->clock()->NowMicros() - scan_start);
    return {};
  }
  const int per_shard = std::max<int>(
      1, config_.peek_max / static_cast<int>(plan.visit.size()));

  std::vector<std::vector<std::string>> shard_ids(plan.visit.size());
  auto peek_shard = [&](const std::string& shard) -> std::vector<std::string> {
    fdb::Transaction txn = cluster->CreateTransaction(PeekOptions());
    ck::QueueZone top_zone =
        quick_->cloudkit()->OpenQueueZone(cluster_db, shard, &txn);
    Result<std::vector<std::string>> ids = top_zone.PeekIds(per_shard);
    health_.Observe(cluster_name, ids.status());
    if (!ids.ok()) return {};  // transient; next round will retry
    return *std::move(ids);
  };
  if (AsyncMode() && plan.visit.size() > 1) {
    // Async mode: one peek transaction per shard, issued concurrently
    // through the futures layer — the scanner fans out and joins instead
    // of paying the per-shard read latencies serially.
    std::vector<fdb::Future<std::vector<std::string>>> peeks;
    peeks.reserve(plan.visit.size());
    for (const std::string& shard : plan.visit) {
      fdb::Promise<std::vector<std::string>> promise;
      peeks.push_back(promise.GetFuture());
      exec_->Post([&peek_shard, &shard, promise]() mutable {
        promise.Set(peek_shard(shard));
      });
    }
    shard_ids = fdb::WhenAll(std::move(peeks)).Get();
  } else {
    for (size_t i = 0; i < plan.visit.size(); ++i) {
      shard_ids[i] = peek_shard(plan.visit[i]);
    }
  }

  // Per-shard in-flight filter and selection: the shard's elected scanner
  // takes its ids in queue order (no starvation, better tail latency);
  // everyone else samples uniformly at random to avoid contention (§6,
  // per shard since DESIGN.md §12). One selection_max budget spans the
  // whole cluster pass; the rotation above moves which shard draws first.
  std::vector<std::string> selected;
  size_t budget = static_cast<size_t>(std::max(config_.selection_max, 1));
  for (size_t i = 0; i < plan.visit.size() && budget > 0; ++i) {
    std::vector<std::string>& ids = shard_ids[i];
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      std::erase_if(ids, [&](const std::string& id) {
        return in_flight_.count(InFlightKey(cluster_name, id)) > 0;
      });
    }
    if (ids.empty()) continue;
    size_t n_select;
    if (IsSequential(cluster_name, plan.visit[i])) {
      n_select = std::min(ids.size(), budget);
    } else {
      const size_t frac_count = static_cast<size_t>(std::ceil(
          static_cast<double>(ids.size()) * config_.selection_frac));
      n_select = std::min({ids.size(), budget, std::max<size_t>(frac_count, 1)});
      // Partial Fisher–Yates: move a random sample to the front.
      for (size_t k = 0; k < n_select; ++k) {
        const size_t j = k + scanner_rng_.Uniform(ids.size() - k);
        std::swap(ids[k], ids[j]);
      }
    }
    selected.insert(selected.end(), ids.begin(), ids.begin() + n_select);
    budget -= n_select;
  }

  stats_.scan_micros.Record(quick_->clock()->NowMicros() - scan_start);
  return selected;
}

Result<int> Consumer::RunOnePass(const std::string& cluster_name) {
  return ScanClusterOnce(cluster_name, /*inline_processing=*/true);
}

// ---------------------------------------------------------------------------
// Async pipelined mode (DESIGN.md §11). The Scanner admits work into a
// bounded window of in-flight transaction chains; every commit rides the
// cluster's async group-commit pipeline, so the commit RTTs that the
// synchronous Manager pool pays one-at-a-time overlap here.
// ---------------------------------------------------------------------------

void Consumer::AsyncScannerLoop() {
  std::vector<std::string> order = clusters_;
  while (running_.load()) {
    std::shuffle(order.begin(), order.end(), scanner_rng_.engine());
    int dispatched_this_round = 0;
    for (const std::string& cluster : order) {
      if (!running_.load()) break;
      int processed = 0;
      while (running_.load() && processed < config_.processing_bound) {
        Result<int> n = AsyncScanClusterOnce(cluster);
        if (!n.ok() || *n == 0) break;
        processed += *n;
        dispatched_this_round += *n;
      }
    }
    if (dispatched_this_round == 0) {
      quick_->clock()->SleepMillis(config_.idle_sleep_millis);
    }
  }
}

bool Consumer::AcquireWindowSlot() {
  int cur = inflight_txns_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= config_.max_inflight_txns) {
      stats_.backpressure_waits.Increment();
      while (running_.load() && inflight_txns_.load(std::memory_order_acquire) >=
                                    config_.max_inflight_txns) {
        quick_->clock()->SleepMillis(1);
      }
      if (!running_.load()) return false;
      cur = inflight_txns_.load(std::memory_order_relaxed);
      continue;
    }
    if (inflight_txns_.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_acq_rel)) {
      return true;
    }
  }
}

Result<int> Consumer::AsyncScanClusterOnce(const std::string& cluster_name) {
  if (crashed_.load()) return 0;
  fdb::Database* cluster = Cluster(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  if (health_.ShouldSkip(cluster_name)) {
    stats_.scans_skipped_breaker.Increment();
    return 0;
  }
  stats_.scans.Increment();

  std::vector<std::string> selected = PeekAndSelect(cluster, cluster_name);
  if (selected.empty()) return 0;

  // Dispatch the selection as lease batches: each batch occupies one
  // window slot (acquired here — the backpressure point) and amortizes one
  // commit RTT over lease_batch_size pointers.
  const size_t batch_max =
      static_cast<size_t>(std::max(config_.lease_batch_size, 1));
  int dispatched = 0;
  std::vector<std::string> batch;
  auto flush = [&]() -> bool {
    if (batch.empty()) return true;
    if (!AcquireWindowSlot()) {
      for (const std::string& id : batch) {
        UnmarkInFlight(InFlightKey(cluster_name, id));
        --dispatched;
      }
      batch.clear();
      return false;  // shutting down
    }
    AsyncLeaseBatch(cluster_name, std::move(batch));
    batch.clear();
    return true;
  };
  for (const std::string& id : selected) {
    if (!MarkInFlight(InFlightKey(cluster_name, id))) continue;
    batch.push_back(id);
    ++dispatched;
    if (batch.size() >= batch_max && !flush()) return dispatched;
  }
  flush();
  return dispatched;
}

void Consumer::AsyncLeaseBatch(const std::string& cluster_name,
                               std::vector<std::string> ids) {
  // Caller holds one window slot and marked every id in flight; both are
  // settled by the commit continuation (OnLeaseBatchCommitted).
  fdb::Database* cluster = Cluster(cluster_name);
  const ck::DatabaseRef cluster_db =
      quick_->cloudkit()->OpenClusterDb(cluster_name);
  const int64_t lease_start = quick_->clock()->NowMicros();

  // Single attempt, like the synchronous LeaseTopItem: a conflict means
  // another consumer has the pointer. Read collisions drop out of the
  // batch before the commit; the survivors share one commit RTT.
  auto txn = std::make_shared<fdb::Transaction>(
      cluster->CreateTransaction(PeekOptions()));
  std::vector<LeasedPointer> survivors;
  survivors.reserve(ids.size());
  for (const std::string& id : ids) {
    stats_.pointer_lease_attempts.Increment();
    ck::QueueZone top_zone = quick_->OpenTopZoneFor(cluster_db, id, txn.get());
    Result<std::optional<ck::QueuedItem>> loaded = top_zone.Load(id);
    if (!loaded.ok() || !loaded->has_value()) {
      health_.Observe(cluster_name, loaded.status());
      UnmarkInFlight(InFlightKey(cluster_name, id));
      continue;  // transient read error, or GC'd meanwhile
    }
    Result<std::string> lease =
        top_zone.ObtainLease(id, config_.pointer_lease_millis);
    if (!lease.ok()) {
      if (lease.status().IsLeaseLost()) {
        stats_.lease_collisions_read.Increment();
        hooks_.Record(id, stage::kLeaseCollision, lease_start,
                      quick_->clock()->NowMicros(), "read");
      } else {
        health_.Observe(cluster_name, lease.status());
      }
      UnmarkInFlight(InFlightKey(cluster_name, id));
      continue;
    }
    survivors.push_back(LeasedPointer{**std::move(loaded), *std::move(lease)});
  }
  if (survivors.empty()) {
    stats_.lease_txn_micros.Record(quick_->clock()->NowMicros() - lease_start);
    EndTxn();
    return;
  }
  // The shared_ptr keeps the transaction alive until the ack lands (it may
  // arrive on the cluster's commit-pump thread; the continuation re-posts
  // onto the executor before doing real work).
  txn->CommitAsync().OnReady(
      [this, txn, cluster_name, lease_start,
       survivors = std::move(survivors)](const Status& st) mutable {
        exec_->Post([this, txn, cluster_name, lease_start,
                     survivors = std::move(survivors), st]() mutable {
          OnLeaseBatchCommitted(cluster_name, std::move(survivors),
                                lease_start, st);
          EndTxn();
        });
      });
}

void Consumer::OnLeaseBatchCommitted(const std::string& cluster_name,
                                     std::vector<LeasedPointer> survivors,
                                     int64_t lease_start,
                                     const Status& commit) {
  const int64_t lease_end = quick_->clock()->NowMicros();
  stats_.lease_txn_micros.Record(lease_end - lease_start);
  health_.Observe(cluster_name, commit);
  if (crashed_.load() || !running_.load()) {
    for (const LeasedPointer& s : survivors) {
      UnmarkInFlight(InFlightKey(cluster_name, s.before.id));
    }
    return;
  }
  if (!commit.ok()) {
    if (commit.IsNotCommitted() && survivors.size() > 1) {
      // The batch lost a conflict on SOME member, but which one is
      // unknowable from the commit status — retry each pointer in its own
      // transaction so one contended pointer cannot poison the batch.
      stats_.lease_batch_fallbacks.Increment();
      for (const LeasedPointer& s : survivors) {
        BeginTxn();
        AsyncLeaseBatch(cluster_name, {s.before.id});
      }
      return;
    }
    if (commit.IsNotCommitted()) {
      stats_.lease_collisions_commit.Increment();
      hooks_.Record(survivors.front().before.id, stage::kLeaseCollision,
                    lease_start, lease_end, "commit");
    }
    for (const LeasedPointer& s : survivors) {
      UnmarkInFlight(InFlightKey(cluster_name, s.before.id));
    }
    return;
  }

  stats_.lease_batches.Increment();
  const ck::DatabaseRef cluster_db =
      quick_->cloudkit()->OpenClusterDb(cluster_name);
  for (LeasedPointer& s : survivors) {
    stats_.pointer_leases_acquired.Increment();
    hooks_.Record(s.before.id, stage::kTopLeased, lease_start, lease_end);
    const int64_t waited_ms =
        quick_->clock()->NowMillis() - s.before.vesting_time;
    if (waited_ms >= 0) {
      stats_.pointer_latency_micros.Record(waited_ms * 1000);
    }
    if (s.before.job_type == ck::kPointerJobType) {
      BeginTxn();
      AsyncHandlePointer(cluster_name, s.before, s.lease_id);
      continue;
    }
    // Local work item (§6): executed directly off the top-level queue.
    WorkerJob job;
    job.cluster = cluster_name;
    job.db_id = cluster_db.id;
    job.zone_name = quick_->TopZoneNameFor(cluster_name, s.before.id);
    job.zone_subspace = cluster_db.ZoneSubspace(job.zone_name);
    job.leased.item = s.before;
    job.leased.item.lease_id = s.lease_id;
    job.leased.item.vesting_time =
        quick_->clock()->NowMillis() + config_.pointer_lease_millis;
    job.leased.lease_id = s.lease_id;
    job.async_finish = true;
    const int64_t latency_ms =
        quick_->clock()->NowMillis() - s.before.enqueue_time;
    stats_.item_latency_micros.Record(latency_ms * 1000);
    stats_.items_dequeued.Increment();
    quick_->tenant_metrics()->OnDequeued(cluster_db.id, 1);
    const std::string key = InFlightKey(cluster_name, s.before.id);
    DispatchWorkerJob(std::move(job), /*inline_processing=*/false);
    UnmarkInFlight(key);
  }
}

void Consumer::AsyncHandlePointer(const std::string& cluster_name,
                                  const ck::QueuedItem& pointer_item,
                                  const std::string& lease_id) {
  // Caller holds one window slot and the pointer's in-flight mark; every
  // path below ends in UnmarkInFlight + EndTxn (via the requeue/GC step or
  // an early finish).
  fdb::Database* cluster = Cluster(cluster_name);
  const std::string key = InFlightKey(cluster_name, pointer_item.id);
  Result<Pointer> pointer = Pointer::FromItem(pointer_item);
  if (!pointer.ok()) {
    // Corrupt pointer: quarantine it (same contract as the sync path).
    const ck::DatabaseRef cluster_db =
        quick_->cloudkit()->OpenClusterDb(cluster_name);
    auto fenced = std::make_shared<bool>(false);
    const std::string item_id = pointer_item.id;
    const std::string why = pointer.status().message();
    fdb::RunTransactionAsync(
        cluster,
        [this, cluster_db, item_id, lease_id, why,
         fenced](fdb::Transaction& txn) {
          ck::QueueZone top_zone =
              quick_->OpenTopZoneFor(cluster_db, item_id, &txn);
          Status c =
              top_zone.Quarantine(item_id, lease_id, "corrupt_pointer", why);
          if (c.IsNotFound() || c.IsLeaseLost()) {
            *fenced = true;
            return Status::OK();
          }
          *fenced = false;
          return c;
        },
        exec_.get(), cancel_)
        .OnReady([this, item_id, fenced, key](const Status& st) {
          if (st.ok()) {
            if (*fenced) {
              stats_.terminal_fenced.Increment();
              hooks_.Mark(item_id, stage::kFenced, "corrupt_pointer");
            } else {
              stats_.items_quarantined.Increment();
              MetricsRegistry::Default()
                  ->GetCounter("quick.deadletter.quarantined")
                  ->Increment();
              hooks_.Mark(item_id, stage::kQuarantined, "corrupt_pointer");
            }
          }
          UnmarkInFlight(key);
          EndTxn();
        });
    return;
  }

  const tup::Subspace zone_subspace =
      ck::CloudKitService::DatabaseSubspace(pointer->db_id)
          .Sub("z")
          .Sub(pointer->zone);
  const ck::DatabaseId db_id = pointer->db_id;
  const std::string zone_name = pointer->zone;

  // Batch-dequeue transaction (Alg. 2 step ii), same body as the sync
  // path — including the migration fence — but committed asynchronously;
  // the chain's state lives on the heap across retries.
  struct DequeueState {
    std::vector<ck::LeasedItem> items;
    std::optional<int64_t> min_vesting;
  };
  auto state = std::make_shared<DequeueState>();
  const int64_t deq_start = quick_->clock()->NowMicros();
  fdb::RunTransactionAsync(
      cluster,
      [this, state, db_id, zone_subspace](fdb::Transaction& txn) {
        state->items.clear();
        state->min_vesting = std::nullopt;
        QUICK_ASSIGN_OR_RETURN(std::optional<std::string> fence,
                               txn.Get(ck::MoveState::Key(db_id)));
        if (fence.has_value()) {
          std::optional<ck::MoveState> ms = ck::MoveState::Decode(*fence);
          if (ms.has_value() && ms->FencesEnqueues()) return Status::OK();
        }
        ck::QueueZone zone(&txn, zone_subspace, quick_->clock(),
                           config_.fifo_tenant_zones);
        if (config_.fifo_tenant_zones) {
          QUICK_ASSIGN_OR_RETURN(
              state->items,
              zone.DequeueFifo(config_.dequeue_max, config_.item_lease_millis));
        } else {
          QUICK_ASSIGN_OR_RETURN(
              state->items,
              zone.Dequeue(config_.dequeue_max, config_.item_lease_millis));
        }
        QUICK_ASSIGN_OR_RETURN(state->min_vesting, zone.MinVestingTime());
        return Status::OK();
      },
      exec_.get(), cancel_)
      .OnReady([this, state, cluster_name, pointer_item, lease_id,
                zone_subspace, db_id, zone_name, deq_start,
                key](const Status& st) {
        const int64_t deq_end = quick_->clock()->NowMicros();
        stats_.dequeue_txn_micros.Record(deq_end - deq_start);
        health_.Observe(cluster_name, st);
        if (!st.ok() || crashed_.load()) {
          // Dequeue failed (or the process "died"): leases are abandoned
          // and expire — another consumer takes over (§5).
          UnmarkInFlight(key);
          EndTxn();
          return;
        }
        const int64_t now = quick_->clock()->NowMillis();
        if (!state->items.empty()) {
          quick_->tenant_metrics()->OnDequeued(
              db_id, static_cast<int64_t>(state->items.size()));
        }
        for (ck::LeasedItem& li : state->items) {
          stats_.items_dequeued.Increment();
          stats_.item_latency_micros.Record((now - li.item.enqueue_time) *
                                            1000);
          hooks_.Record(li.item.id, stage::kDequeued, deq_start, deq_end,
                        "batch=" + std::to_string(state->items.size()),
                        /*parent=*/pointer_item.id);
          WorkerJob job;
          job.cluster = cluster_name;
          job.db_id = db_id;
          job.zone_name = zone_name;
          job.zone_subspace = zone_subspace;
          job.fifo_zone = config_.fifo_tenant_zones;
          job.leased = std::move(li);
          job.async_finish = true;
          DispatchWorkerJob(std::move(job), /*inline_processing=*/false);
        }
        AsyncRequeueOrGcPointer(cluster_name, pointer_item, lease_id,
                                !state->items.empty(), state->min_vesting,
                                zone_subspace, key);
      });
}

void Consumer::AsyncRequeueOrGcPointer(const std::string& cluster_name,
                                       const ck::QueuedItem& pointer_item,
                                       const std::string& lease_id,
                                       bool found_items,
                                       std::optional<int64_t> min_vesting,
                                       const tup::Subspace& zone_subspace,
                                       const std::string& inflight_key) {
  // Final step of a pointer chain: every path releases the in-flight mark
  // and the window slot.
  auto finish = [this, inflight_key] {
    UnmarkInFlight(inflight_key);
    EndTxn();
  };
  if (crashed_.load()) {  // pointer lease abandoned
    finish();
    return;
  }
  fdb::Database* cluster = Cluster(cluster_name);
  const ck::DatabaseRef cluster_db =
      quick_->cloudkit()->OpenClusterDb(cluster_name);
  const bool is_active = found_items || min_vesting.has_value();
  const int64_t now = quick_->clock()->NowMillis();

  if (is_active) {
    const std::string item_id = pointer_item.id;
    // Shared so the trace hook below reports the delay the committed
    // attempt actually chose.
    auto delay = std::make_shared<int64_t>(0);
    fdb::RunTransactionAsync(
        cluster,
        [this, cluster_db, item_id, lease_id, min_vesting, zone_subspace,
         delay](fdb::Transaction& txn) {
          const int64_t tnow = quick_->clock()->NowMillis();
          ck::QueueZone top_zone =
              quick_->OpenTopZoneFor(cluster_db, item_id, &txn);
          QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> loaded,
                                 top_zone.Load(item_id));
          if (!loaded.has_value()) return Status::OK();
          if (loaded->lease_id != lease_id) return Status::OK();  // superseded
          // Same fresh re-read as the sync path: continuations committed by
          // finish transactions after the dequeue snapshot must not wait a
          // full item lease behind a stale min-vesting.
          ck::QueueZone zone(&txn, zone_subspace, quick_->clock(),
                             config_.fifo_tenant_zones);
          QUICK_ASSIGN_OR_RETURN(std::optional<int64_t> fresh,
                                 zone.MinVestingTime());
          const std::optional<int64_t>& effective =
              fresh.has_value() ? fresh : min_vesting;
          *delay = effective.has_value()
                       ? std::max<int64_t>(0, *effective - tnow)
                       : 0;
          ck::QueuedItem updated = *std::move(loaded);
          updated.vesting_time = tnow + *delay;
          updated.lease_id.clear();
          updated.last_active_time = tnow;
          return top_zone.SaveItem(updated);
        },
        exec_.get(), cancel_)
        .OnReady([this, item_id, delay, finish](const Status& st) {
          if (st.ok()) {
            stats_.pointers_requeued.Increment();
            hooks_.Mark(item_id, stage::kRequeued,
                        "pointer delay_ms=" + std::to_string(*delay));
          }
          finish();
        });
    return;
  }

  // Queue observed empty.
  if (now - pointer_item.last_active_time < config_.min_inactive_millis) {
    finish();
    return;
  }

  // GC: transactional delete with a strong emptiness check, single attempt
  // (same contract as the sync path: a racing enqueue aborts the commit).
  auto txn = std::make_shared<fdb::Transaction>(cluster->CreateTransaction());
  ck::QueueZone zone(txn.get(), zone_subspace, quick_->clock(),
                     config_.fifo_tenant_zones);
  Result<bool> empty = zone.IsEmpty();
  if (!empty.ok()) {
    finish();
    return;
  }
  if (!*empty) {
    stats_.pointer_gc_aborted.Increment();
    finish();
    return;
  }
  ck::QueueZone top_zone =
      quick_->OpenTopZoneFor(cluster_db, pointer_item.id, txn.get());
  Status st = top_zone.Complete(pointer_item.id, lease_id);
  if (!st.ok()) {  // NotFound/LeaseLost: superseded — nothing to do
    finish();
    return;
  }
  const std::string item_id = pointer_item.id;
  txn->CommitAsync().OnReady(
      [this, txn, item_id, finish](const Status& commit) {
        exec_->Post([this, txn, item_id, finish, commit] {
          if (commit.IsNotCommitted()) {
            stats_.pointer_gc_aborted.Increment();
          } else if (commit.ok()) {
            stats_.pointers_deleted.Increment();
            hooks_.Mark(item_id, stage::kCompleted, "gc");
          }
          finish();
        });
      });
}

// ---------------------------------------------------------------------------
// Algorithm 2: Manager.
// ---------------------------------------------------------------------------

Status Consumer::ProcessTopItem(const std::string& cluster_name,
                                const std::string& item_id) {
  const std::string key = InFlightKey(cluster_name, item_id);
  if (!MarkInFlight(key)) {
    return Status::FailedPrecondition("already in flight");
  }
  return ProcessTopItemImpl(cluster_name, item_id,
                            /*inline_processing=*/true);
}

Result<std::pair<ck::QueuedItem, std::string>> Consumer::LeaseTopItem(
    fdb::Database* cluster, const ck::DatabaseRef& cluster_db,
    const std::string& item_id) {
  // Single attempt, deliberately outside the retry loop: a conflict means
  // another consumer has the pointer, and retrying would only rediscover
  // that. The two failure sites match Figure 7's breakdown — (a) the item
  // is observed leased/unvested at read time, (b) the conditional update
  // loses at commit.
  fdb::Transaction txn = cluster->CreateTransaction(PeekOptions());
  ck::QueueZone top_zone = quick_->OpenTopZoneFor(cluster_db, item_id, &txn);
  QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> loaded,
                         top_zone.Load(item_id));
  if (!loaded.has_value()) {
    return Status::NotFound("top-level item gone");
  }
  ck::QueuedItem before = *std::move(loaded);
  Result<std::string> lease =
      top_zone.ObtainLease(item_id, config_.pointer_lease_millis);
  if (!lease.ok()) return lease.status();  // kLeaseLost: read-detected
  Status commit = txn.Commit();
  if (!commit.ok()) return commit;  // kNotCommitted: commit-detected
  return std::make_pair(std::move(before), *std::move(lease));
}

Status Consumer::ProcessTopItemImpl(const std::string& cluster_name,
                                    const std::string& item_id,
                                    bool inline_processing) {
  if (crashed_.load()) return Status::OK();
  const std::string key = InFlightKey(cluster_name, item_id);
  Status st = [&]() -> Status {
    fdb::Database* cluster = Cluster(cluster_name);
    if (cluster == nullptr) {
      return Status::InvalidArgument("unknown cluster " + cluster_name);
    }
    const ck::DatabaseRef cluster_db =
        quick_->cloudkit()->OpenClusterDb(cluster_name);

    if (config_.item_level_leases_only) {
      // Ablation A1: skip the pointer lease entirely; consumers contend on
      // individual work items.
      fdb::Transaction txn = cluster->CreateTransaction(PeekOptions());
      ck::QueueZone top_zone =
          quick_->OpenTopZoneFor(cluster_db, item_id, &txn);
      QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> loaded,
                             top_zone.Load(item_id));
      if (!loaded.has_value()) return Status::OK();
      if (loaded->job_type == ck::kPointerJobType) {
        return HandlePointerItemLevel(cluster_name, *loaded,
                                      inline_processing);
      }
      // Local items still need a lease even in the ablation.
    }

    stats_.pointer_lease_attempts.Increment();
    const int64_t lease_start = quick_->clock()->NowMicros();
    Result<std::pair<ck::QueuedItem, std::string>> leased =
        LeaseTopItem(cluster, cluster_db, item_id);
    const int64_t lease_end = quick_->clock()->NowMicros();
    stats_.lease_txn_micros.Record(lease_end - lease_start);
    health_.Observe(cluster_name, leased.status());
    if (!leased.ok()) {
      const Status& err = leased.status();
      if (err.IsNotFound()) return Status::OK();  // GC'd meanwhile
      if (err.IsLeaseLost()) {
        stats_.lease_collisions_read.Increment();
        hooks_.Record(item_id, stage::kLeaseCollision, lease_start, lease_end,
                      "read");
      } else if (err.IsNotCommitted()) {
        stats_.lease_collisions_commit.Increment();
        hooks_.Record(item_id, stage::kLeaseCollision, lease_start, lease_end,
                      "commit");
      }
      return Status::OK();
    }
    stats_.pointer_leases_acquired.Increment();
    hooks_.Record(item_id, stage::kTopLeased, lease_start, lease_end);
    const ck::QueuedItem& before = leased->first;
    const std::string& lease_id = leased->second;

    // Pointer pickup latency: how long it sat vested before a consumer
    // started serving its queue (Figures 5/6 series (a)).
    const int64_t waited_ms =
        quick_->clock()->NowMillis() - before.vesting_time;
    if (waited_ms >= 0) {
      stats_.pointer_latency_micros.Record(waited_ms * 1000);
    }

    if (before.job_type == ck::kPointerJobType) {
      return HandlePointer(cluster_name, before, lease_id, inline_processing);
    }

    // Local work item (§6): executed directly off the top-level queue.
    WorkerJob job;
    job.cluster = cluster_name;
    job.db_id = cluster_db.id;
    job.zone_name = quick_->TopZoneNameFor(cluster_name, before.id);
    job.zone_subspace = cluster_db.ZoneSubspace(job.zone_name);
    job.leased.item = before;
    job.leased.item.lease_id = lease_id;
    job.leased.item.vesting_time =
        quick_->clock()->NowMillis() + config_.pointer_lease_millis;
    job.leased.lease_id = lease_id;
    const int64_t latency_ms =
        quick_->clock()->NowMillis() - before.enqueue_time;
    stats_.item_latency_micros.Record(latency_ms * 1000);
    stats_.items_dequeued.Increment();
    quick_->tenant_metrics()->OnDequeued(cluster_db.id, 1);
    DispatchWorkerJob(std::move(job), inline_processing);
    return Status::OK();
  }();
  UnmarkInFlight(key);
  return st;
}

Status Consumer::HandlePointer(const std::string& cluster_name,
                               const ck::QueuedItem& pointer_item,
                               const std::string& lease_id,
                               bool inline_processing) {
  fdb::Database* cluster = Cluster(cluster_name);
  Result<Pointer> pointer = Pointer::FromItem(pointer_item);
  if (!pointer.ok()) {
    // Corrupt pointer: move it out of the queue rather than blocking it
    // (§2 "Operations and monitoring") — into the top-level zone's
    // dead-letter quarantine, not the void, so operators can inspect it.
    const ck::DatabaseRef cluster_db =
        quick_->cloudkit()->OpenClusterDb(cluster_name);
    bool fenced = false;
    Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone top_zone =
          quick_->OpenTopZoneFor(cluster_db, pointer_item.id, &txn);
      Status c = top_zone.Quarantine(pointer_item.id, lease_id,
                                     "corrupt_pointer",
                                     pointer.status().message());
      if (c.IsNotFound() || c.IsLeaseLost()) {
        fenced = true;
        return Status::OK();
      }
      fenced = false;
      return c;
    });
    QUICK_RETURN_IF_ERROR(st);
    if (fenced) {
      stats_.terminal_fenced.Increment();
      hooks_.Mark(pointer_item.id, stage::kFenced, "corrupt_pointer");
      return Status::OK();
    }
    stats_.items_quarantined.Increment();
    MetricsRegistry::Default()->GetCounter("quick.deadletter.quarantined")
        ->Increment();
    hooks_.Mark(pointer_item.id, stage::kQuarantined, "corrupt_pointer");
    return Status::OK();
  }

  // The zone lives on this cluster under the database's (cluster-
  // independent) prefix; placement is irrelevant here, which is what lets
  // stale pointers at a migration source resolve harmlessly.
  const tup::Subspace zone_subspace =
      ck::CloudKitService::DatabaseSubspace(pointer->db_id)
          .Sub("z")
          .Sub(pointer->zone);

  // Batch-dequeue up to dequeue_max items (Alg. 2 step ii).
  std::vector<ck::LeasedItem> items;
  std::optional<int64_t> min_vesting;
  const int64_t deq_start = quick_->clock()->NowMicros();
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    items.clear();
    min_vesting = std::nullopt;
    // Migration fence, mirror of the enqueue-side read: when the tenant
    // is sealed mid-move, dequeue nothing. The strong read means a dequeue
    // racing the seal transaction conflicts with its write and retries
    // into seeing the fence — so after the seal commits, no dequeue can
    // take items out of the source zone (the balancer's final copy relies
    // on this quiescence).
    QUICK_ASSIGN_OR_RETURN(
        std::optional<std::string> fence,
        txn.Get(ck::MoveState::Key(pointer->db_id)));
    if (fence.has_value()) {
      std::optional<ck::MoveState> state = ck::MoveState::Decode(*fence);
      if (state.has_value() && state->FencesEnqueues()) return Status::OK();
    }
    ck::QueueZone zone(&txn, zone_subspace, quick_->clock(),
                       config_.fifo_tenant_zones);
    if (config_.fifo_tenant_zones) {
      QUICK_ASSIGN_OR_RETURN(items,
                             zone.DequeueFifo(config_.dequeue_max,
                                              config_.item_lease_millis));
    } else {
      QUICK_ASSIGN_OR_RETURN(
          items,
          zone.Dequeue(config_.dequeue_max, config_.item_lease_millis));
    }
    QUICK_ASSIGN_OR_RETURN(min_vesting, zone.MinVestingTime());
    return Status::OK();
  });
  const int64_t deq_end = quick_->clock()->NowMicros();
  stats_.dequeue_txn_micros.Record(deq_end - deq_start);
  health_.Observe(cluster_name, st);
  QUICK_RETURN_IF_ERROR(st);
  // Crash chaos: the process "died" after dequeuing — item and pointer
  // leases are abandoned and must be recovered by another consumer.
  if (crashed_.load()) return Status::OK();

  const int64_t now = quick_->clock()->NowMillis();
  if (!items.empty()) {
    quick_->tenant_metrics()->OnDequeued(pointer->db_id,
                                         static_cast<int64_t>(items.size()));
  }
  for (ck::LeasedItem& li : items) {
    stats_.items_dequeued.Increment();
    stats_.item_latency_micros.Record((now - li.item.enqueue_time) * 1000);
    hooks_.Record(li.item.id, stage::kDequeued, deq_start, deq_end,
                  "batch=" + std::to_string(items.size()),
                  /*parent=*/pointer_item.id);
    WorkerJob job;
    job.cluster = cluster_name;
    job.db_id = pointer->db_id;
    job.zone_name = pointer->zone;
    job.zone_subspace = zone_subspace;
    job.fifo_zone = config_.fifo_tenant_zones;
    job.leased = std::move(li);
    DispatchWorkerJob(std::move(job), inline_processing);
  }

  return RequeueOrGcPointer(cluster_name, pointer_item, lease_id,
                            !items.empty(), min_vesting, zone_subspace);
}

Status Consumer::RequeueOrGcPointer(const std::string& cluster_name,
                                    const ck::QueuedItem& pointer_item,
                                    const std::string& lease_id,
                                    bool found_items,
                                    std::optional<int64_t> min_vesting,
                                    const tup::Subspace& zone_subspace) {
  if (crashed_.load()) return Status::OK();  // pointer lease abandoned
  fdb::Database* cluster = Cluster(cluster_name);
  const ck::DatabaseRef cluster_db =
      quick_->cloudkit()->OpenClusterDb(cluster_name);
  const bool is_active = found_items || min_vesting.has_value();
  const int64_t now = quick_->clock()->NowMillis();

  if (is_active) {
    // Requeue so the pointer reappears when the earliest remaining item
    // vests (water-filling: long queues come back immediately).
    int64_t delay = 0;
    Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone top_zone =
          quick_->OpenTopZoneFor(cluster_db, pointer_item.id, &txn);
      QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> loaded,
                             top_zone.Load(pointer_item.id));
      if (!loaded.has_value()) return Status::OK();
      if (loaded->lease_id != lease_id) return Status::OK();  // superseded
      // Re-read the earliest vesting time here rather than trusting the
      // dequeue-time snapshot: finish transactions enqueue continuations
      // into this zone after that snapshot, and the enqueue-side pointer
      // fix-up skips leased pointers — this consumer holds the lease — so
      // the stale value would park an already-vested continuation behind
      // a full item lease.
      ck::QueueZone zone(&txn, zone_subspace, quick_->clock(),
                         config_.fifo_tenant_zones);
      QUICK_ASSIGN_OR_RETURN(std::optional<int64_t> fresh,
                             zone.MinVestingTime());
      const std::optional<int64_t>& effective =
          fresh.has_value() ? fresh : min_vesting;
      const int64_t tnow = quick_->clock()->NowMillis();
      delay = effective.has_value() ? std::max<int64_t>(0, *effective - tnow)
                                    : 0;
      ck::QueuedItem updated = *std::move(loaded);
      updated.vesting_time = tnow + delay;
      updated.lease_id.clear();
      updated.last_active_time = tnow;
      return top_zone.SaveItem(updated);
    });
    if (st.ok()) {
      stats_.pointers_requeued.Increment();
      hooks_.Mark(pointer_item.id, stage::kRequeued,
                  "pointer delay_ms=" + std::to_string(delay));
    }
    return st;
  }

  // Queue observed empty.
  if (now - pointer_item.last_active_time < config_.min_inactive_millis) {
    // Within the GC grace period: do nothing; the pointer re-vests when the
    // lease expires, and a cheap enqueue can reuse it meanwhile (§6
    // "Pointer garbage-collection").
    return Status::OK();
  }

  // Delete the pointer — transactionally with a strong emptiness check of
  // the queue zone, so a racing enqueue aborts this transaction (§6
  // "Correctness").
  fdb::Transaction txn = cluster->CreateTransaction();
  ck::QueueZone zone(&txn, zone_subspace, quick_->clock(),
                     config_.fifo_tenant_zones);
  Result<bool> empty = zone.IsEmpty();
  QUICK_RETURN_IF_ERROR(empty.status());
  if (!*empty) {
    stats_.pointer_gc_aborted.Increment();
    return Status::OK();  // item arrived; pointer stays
  }
  ck::QueueZone top_zone =
      quick_->OpenTopZoneFor(cluster_db, pointer_item.id, &txn);
  Status st = top_zone.Complete(pointer_item.id, lease_id);
  if (st.IsNotFound() || st.IsLeaseLost()) return Status::OK();
  QUICK_RETURN_IF_ERROR(st);
  Status commit = txn.Commit();
  if (commit.IsNotCommitted()) {
    stats_.pointer_gc_aborted.Increment();
    return Status::OK();
  }
  if (commit.ok()) {
    stats_.pointers_deleted.Increment();
    hooks_.Mark(pointer_item.id, stage::kCompleted, "gc");
  }
  return commit;
}

Status Consumer::HandlePointerItemLevel(const std::string& cluster_name,
                                        const ck::QueuedItem& pointer_item,
                                        bool inline_processing) {
  // Ablation A1: every consumer that selected this pointer dequeues from
  // the zone directly; leases are taken per item, so consumers contend on
  // item records (one wins per item, the rest abort at commit).
  fdb::Database* cluster = Cluster(cluster_name);
  Result<Pointer> pointer = Pointer::FromItem(pointer_item);
  QUICK_RETURN_IF_ERROR(pointer.status());
  const tup::Subspace zone_subspace =
      ck::CloudKitService::DatabaseSubspace(pointer->db_id)
          .Sub("z")
          .Sub(pointer->zone);

  std::vector<ck::LeasedItem> items;
  std::optional<int64_t> min_vesting;
  const int64_t deq_start = quick_->clock()->NowMicros();
  {
    stats_.pointer_lease_attempts.Increment();
    fdb::Transaction txn = cluster->CreateTransaction(PeekOptions());
    // Same migration fence as HandlePointer's dequeue transaction.
    Result<std::optional<std::string>> fence =
        txn.Get(ck::MoveState::Key(pointer->db_id));
    QUICK_RETURN_IF_ERROR(fence.status());
    if (fence->has_value()) {
      std::optional<ck::MoveState> state = ck::MoveState::Decode(**fence);
      if (state.has_value() && state->FencesEnqueues()) return Status::OK();
    }
    ck::QueueZone zone(&txn, zone_subspace, quick_->clock(),
                       config_.fifo_tenant_zones);
    Result<std::vector<ck::LeasedItem>> deq =
        zone.Dequeue(config_.dequeue_max, config_.item_lease_millis);
    QUICK_RETURN_IF_ERROR(deq.status());
    Result<std::optional<int64_t>> mv = zone.MinVestingTime();
    QUICK_RETURN_IF_ERROR(mv.status());
    Status commit = txn.Commit();
    stats_.dequeue_txn_micros.Record(quick_->clock()->NowMicros() - deq_start);
    if (commit.IsNotCommitted()) {
      stats_.lease_collisions_commit.Increment();
      return Status::OK();
    }
    QUICK_RETURN_IF_ERROR(commit);
    items = *std::move(deq);
    min_vesting = *mv;
    if (items.empty() && min_vesting.has_value()) {
      stats_.lease_collisions_read.Increment();  // everything leased away
    }
  }

  const int64_t now = quick_->clock()->NowMillis();
  const int64_t deq_end = quick_->clock()->NowMicros();
  if (!items.empty()) {
    quick_->tenant_metrics()->OnDequeued(pointer->db_id,
                                         static_cast<int64_t>(items.size()));
  }
  for (ck::LeasedItem& li : items) {
    stats_.items_dequeued.Increment();
    stats_.item_latency_micros.Record((now - li.item.enqueue_time) * 1000);
    hooks_.Record(li.item.id, stage::kDequeued, deq_start, deq_end,
                  "item_level batch=" + std::to_string(items.size()),
                  /*parent=*/pointer_item.id);
    WorkerJob job;
    job.cluster = cluster_name;
    job.db_id = pointer->db_id;
    job.zone_name = pointer->zone;
    job.zone_subspace = zone_subspace;
    job.leased = std::move(li);
    DispatchWorkerJob(std::move(job), inline_processing);
  }

  // Pointer maintenance without a lease: requeue if active, GC when cold.
  return RequeueOrGcPointer(cluster_name, pointer_item, pointer_item.lease_id,
                            !items.empty(), min_vesting, zone_subspace);
}

// ---------------------------------------------------------------------------
// Algorithm 3: Worker.
// ---------------------------------------------------------------------------

void Consumer::DispatchWorkerJob(WorkerJob job, bool inline_processing) {
  job.entry = registry_->Find(job.leased.item.job_type);
  job.lease_lost = std::make_shared<std::atomic<bool>>(false);

  // Admission gate on dispatch: a hot tenant's already-dequeued items can
  // be pushed back instead of monopolizing the worker pool. Work is never
  // dropped here — a shed verdict also requeues (the item exists; only a
  // producer-side shed refuses outright) — so the item re-vests after the
  // gate's retry-after hint and any consumer picks it up again.
  // Pushes an already-dequeued item back (admission / throttle verdicts):
  // blocking in sync mode, a window transaction in async mode so the
  // executor thread issuing the dispatch is never parked on a commit.
  auto requeue_back = [this, &job](int64_t delay, std::string why) {
    fdb::Database* cluster = Cluster(job.cluster);
    auto body = [this, zone_subspace = job.zone_subspace,
                 fifo = job.fifo_zone, item_id = job.leased.item.id,
                 lease = job.leased.lease_id, delay](fdb::Transaction& txn) {
      ck::QueueZone zone(&txn, zone_subspace, quick_->clock(), fifo);
      Status s = zone.Requeue(item_id, delay,
                              /*increment_error_count=*/false, lease);
      return s.IsNotFound() || s.IsLeaseLost() ? Status::OK() : s;
    };
    if (job.async_finish && AsyncMode()) {
      BeginTxn();
      fdb::RunTransactionAsync(cluster, body, exec_.get(), cancel_)
          .OnReady([this, item_id = job.leased.item.id,
                    why = std::move(why)](const Status& st) {
            if (st.ok()) hooks_.Mark(item_id, stage::kRequeued, why);
            EndTxn();
          });
      return;
    }
    Status st = fdb::RunTransaction(cluster, body);
    if (st.ok()) hooks_.Mark(job.leased.item.id, stage::kRequeued, why);
  };

  if (quick_->admission() != nullptr) {
    const AdmissionDecision d =
        quick_->admission()->AdmitDispatch(job.db_id, job.cluster, 1);
    if (!d.admitted()) {
      stats_.items_dispatch_throttled.Increment();
      const int64_t delay = std::max<int64_t>(0, d.retry_after_millis);
      requeue_back(delay, std::string("admission level=") + d.level +
                              " delay_ms=" + std::to_string(delay));
      return;
    }
  }

  // Per-type throttling (§7: dynamic allocation with per-topic bounds).
  if (job.entry != nullptr && job.entry->policy.max_concurrent > 0) {
    if (!TryAcquireThrottle(job.leased.item.job_type,
                            job.entry->policy.max_concurrent)) {
      stats_.items_throttled.Increment();
      // Release the lease so any consumer can pick the item up again.
      requeue_back(0, "throttle");
      return;
    }
    job.throttle_held = true;
  }

  if (inline_processing || worker_queue_ == nullptr) {
    ProcessWorkItem(std::move(job));
    return;
  }
  const std::string job_type = job.leased.item.job_type;
  const bool throttled = job.throttle_held;
  if (!worker_queue_->Push(std::move(job)) && throttled) {
    ReleaseThrottle(job_type);  // shutting down
  }
}

void Consumer::ProcessWorkItem(WorkerJob job) {
  if (crashed_.load()) return;  // item lease abandoned, never executed
  const std::string ext_key = InFlightKey(job.cluster, job.leased.item.id);
  Status final_status;

  if (job.entry == nullptr) {
    // No handler for this type: a permanently failing item. Deleting beats
    // blocking the queue (§2: "a corrupt task should not block the whole
    // system").
    final_status = Status::Permanent("no handler for job type " +
                                     job.leased.item.job_type);
  } else {
    // Register with the lease extender for the duration of processing.
    {
      std::lock_guard<std::mutex> lock(ext_mu_);
      extensions_[ext_key] = ExtensionEntry{job.cluster, job.zone_subspace,
                                            job.fifo_zone,
                                            job.leased.item.id,
                                            job.leased.lease_id,
                                            job.lease_lost};
    }
    const RetryPolicy& policy = job.entry->policy;
    WorkContext ctx;
    ctx.item = job.leased.item;
    ctx.db_id = job.db_id;
    ctx.zone = job.zone_name;
    ctx.consumer_id = id_;
    ctx.clock = quick_->clock();
    ctx.lease_lost = job.lease_lost.get();

    for (int attempt = 0; attempt <= policy.max_inline_retries; ++attempt) {
      ctx.attempt = attempt;
      ctx.deadline_millis =
          quick_->clock()->NowMillis() + policy.execution_bound_millis;
      const int64_t start = quick_->clock()->NowMicros();
      job.result = job.entry->handler(ctx);
      final_status = job.result.status;
      const int64_t end = quick_->clock()->NowMicros();
      stats_.item_exec_micros.Record(end - start);
      hooks_.Record(job.leased.item.id, stage::kExecute, start, end,
                    "attempt=" + std::to_string(attempt) + " status=" +
                        std::string(StatusCodeName(final_status.code())));
      if (final_status.ok() || final_status.IsPermanent()) break;
      stats_.items_failed_attempts.Increment();
      if (job.lease_lost->load()) break;  // processing interrupted
    }
    // Heading for a terminal failure? Give the type's TerminalHandler the
    // chance to produce extras (compensation continuations, cleanup
    // effects) that will commit atomically with the quarantine/drop.
    if (!final_status.ok() && job.entry->on_terminal != nullptr) {
      const int64_t next_error_count = job.leased.item.error_count + 1;
      const bool exhausted = policy.max_attempts > 0 &&
                             next_error_count >= policy.max_attempts &&
                             policy.drop_on_exhaust;
      if (final_status.IsPermanent() || exhausted) {
        job.terminal_result = job.entry->on_terminal(ctx, final_status);
      }
    }
    {
      std::lock_guard<std::mutex> lock(ext_mu_);
      extensions_.erase(ext_key);
    }
  }

  if (job.throttle_held) ReleaseThrottle(job.leased.item.job_type);
  if (job.async_finish && AsyncMode()) {
    // Hand the finish commit to the in-flight window; this worker thread
    // is free for the next item while the transition is in flight.
    AsyncFinishItem(std::move(job), final_status);
    return;
  }
  (void)FinishItem(job, final_status);
}

void Consumer::RaiseAlert(Alert::Kind kind, const WorkerJob& job,
                          int64_t error_count, const std::string& detail) {
  if (alert_sink_ == nullptr) return;
  Alert alert;
  alert.kind = kind;
  alert.db_id = job.db_id;
  alert.zone = job.zone_name;
  alert.item_id = job.leased.item.id;
  alert.job_type = job.leased.item.job_type;
  alert.error_count = error_count;
  alert.detail = detail;
  alert_sink_->Raise(alert);
}

Status Consumer::ApplyResultExtras(fdb::Transaction& txn, const WorkerJob& job,
                                   const WorkResult& result,
                                   std::vector<EnqueueFollowUp>* follow_ups,
                                   std::vector<std::string>* continuation_ids) {
  // Transaction bodies re-run on conflict; start every attempt clean.
  follow_ups->clear();
  continuation_ids->clear();
  if (result.txn_hook != nullptr) {
    QUICK_RETURN_IF_ERROR(result.txn_hook(txn));
  }
  if (!result.continuations.empty()) {
    if (job.db_id.kind == ck::DatabaseKind::kCluster) {
      // Local items continue as local items: straight into the cluster's
      // top-level queue (no tenant zone, no pointer, no migration fence).
      const ck::DatabaseRef cluster_db =
          quick_->cloudkit()->OpenClusterDb(job.cluster);
      for (const ContinuationEnqueue& c : result.continuations) {
        ck::QueuedItem queued;
        queued.id = c.id.empty() ? Random::ThreadLocal().NextUuid() : c.id;
        queued.job_type = c.job_type;
        queued.priority = c.priority;
        queued.payload = c.payload;
        ck::QueueZone top_zone =
            quick_->OpenTopZoneFor(cluster_db, queued.id, &txn);
        QUICK_ASSIGN_OR_RETURN(
            std::string id,
            top_zone.Enqueue(std::move(queued), c.vesting_delay_millis));
        continuation_ids->push_back(std::move(id));
      }
    } else {
      // Tenant items go through the full two-part enqueue protocol inside
      // this very transaction. A migration fence (kTenantMoving) fails the
      // whole finish: the item's lease then expires and a consumer at the
      // tenant's new home re-executes it — atomicity over latency.
      const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(job.db_id);
      for (const ContinuationEnqueue& c : result.continuations) {
        WorkItem item;
        item.job_type = c.job_type;
        item.payload = c.payload;
        item.priority = c.priority;
        item.id = c.id;
        EnqueueFollowUp follow_up;
        QUICK_ASSIGN_OR_RETURN(
            std::string id,
            quick_->EnqueueInTransaction(&txn, db, item,
                                         c.vesting_delay_millis, &follow_up));
        continuation_ids->push_back(std::move(id));
        follow_ups->push_back(follow_up);
      }
    }
  }
  for (const OutboxEffect& e : result.effects) {
    ck::OutboxEntry row;
    row.target = e.target;
    row.idempotency_key = e.idempotency_key;
    row.payload = e.payload;
    row.origin_item = job.leased.item.id;
    row.created_millis = quick_->clock()->NowMillis();
    QUICK_RETURN_IF_ERROR(ck::Outbox::Append(txn, job.cluster, row));
  }
  return Status::OK();
}

void Consumer::AfterResultExtras(
    const WorkerJob& job, const WorkResult& result,
    const std::vector<EnqueueFollowUp>& follow_ups,
    const std::vector<std::string>& continuation_ids) {
  if (!continuation_ids.empty()) {
    stats_.continuations_enqueued.Increment(
        static_cast<int64_t>(continuation_ids.size()));
    quick_->tenant_metrics()->OnEnqueued(
        job.db_id, static_cast<int64_t>(continuation_ids.size()));
    for (const std::string& id : continuation_ids) {
      hooks_.Mark(id, stage::kEnqueued,
                  "continuation of=" + job.leased.item.id,
                  /*parent=*/job.leased.item.id);
    }
  }
  if (!result.effects.empty()) {
    stats_.outbox_effects_recorded.Increment(
        static_cast<int64_t>(result.effects.size()));
  }
  if (!follow_ups.empty()) {
    const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(job.db_id);
    for (const EnqueueFollowUp& follow_up : follow_ups) {
      quick_->ExecuteFollowUp(db, follow_up);
    }
  }
}

Status Consumer::FinishItem(const WorkerJob& job, const Status& final_status) {
  // Crash chaos: completion never lands; the item's lease expires and
  // another consumer re-executes it (at-least-once, §5).
  if (crashed_.load()) return Status::OK();
  if (!final_status.ok()) {
    quick_->tenant_metrics()->OnError(job.db_id, 1);
  }
  fdb::Database* cluster = Cluster(job.cluster);
  const bool is_local =
      StartsWith(job.zone_name, quick_->config().top_zone_name);

  if (final_status.ok()) {
    bool fenced = false;
    std::vector<EnqueueFollowUp> follow_ups;
    std::vector<std::string> continuation_ids;
    const int64_t fin_start = quick_->clock()->NowMicros();
    Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone zone(&txn, job.zone_subspace, quick_->clock(),
                         job.fifo_zone);
      Status c = zone.Complete(job.leased.item.id, job.leased.lease_id);
      if (c.IsNotFound() || c.IsLeaseLost()) {
        fenced = true;  // someone else finished/retook it
        return Status::OK();
      }
      fenced = false;
      QUICK_RETURN_IF_ERROR(c);
      // Gray's queued-transaction pattern: continuation enqueues, outbox
      // rows, and the handler's hook commit WITH the Complete — a fenced
      // transition applies none of them (the retaking consumer's finish
      // will).
      if (HasExtras(job.result)) {
        return ApplyResultExtras(txn, job, job.result, &follow_ups,
                                 &continuation_ids);
      }
      return Status::OK();
    });
    const int64_t fin_end = quick_->clock()->NowMicros();
    stats_.finish_txn_micros.Record(fin_end - fin_start);
    health_.Observe(job.cluster, st);
    QUICK_RETURN_IF_ERROR(st);
    if (fenced) {
      stats_.leases_lost.Increment();
      stats_.terminal_fenced.Increment();
      hooks_.Record(job.leased.item.id, stage::kFenced, fin_start, fin_end,
                    "complete");
      return Status::OK();
    }
    stats_.items_processed.Increment();
    if (is_local) stats_.local_items_processed.Increment();
    hooks_.Record(job.leased.item.id, stage::kCompleted, fin_start, fin_end,
                  is_local ? "local" : "");
    AfterResultExtras(job, job.result, follow_ups, continuation_ids);
    return st;
  }

  // Terminal failures — permanent errors (§6: never retried) and exhausted
  // attempt budgets — leave the queue through one fenced transition.
  const RetryPolicy policy =
      job.entry != nullptr ? job.entry->policy : RetryPolicy{};
  const int64_t next_error_count = job.leased.item.error_count + 1;
  const bool exhausted = policy.max_attempts > 0 &&
                         next_error_count >= policy.max_attempts &&
                         policy.drop_on_exhaust;
  if (final_status.IsPermanent() || exhausted) {
    return FinishTerminalFailure(job, final_status, policy);
  }

  // Transient failure: requeue with exponential backoff on the error
  // count. Fenced like every other transition out of processing — a
  // zombie's requeue must not clear a lease another consumer now holds.
  if (policy.alert_after_errors > 0 &&
      next_error_count >= policy.alert_after_errors) {
    RaiseAlert(Alert::Kind::kRepeatedFailures, job, next_error_count,
               final_status.message());
  }
  const int64_t delay =
      policy.BackoffForErrorCount(job.leased.item.error_count);
  bool fenced = false;
  const int64_t fin_start = quick_->clock()->NowMicros();
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone(&txn, job.zone_subspace, quick_->clock(),
                       job.fifo_zone);
    Status c = zone.Requeue(job.leased.item.id, delay,
                            /*increment_error_count=*/true,
                            job.leased.lease_id);
    if (c.IsNotFound() || c.IsLeaseLost()) {
      fenced = true;
      return Status::OK();
    }
    fenced = false;
    return c;
  });
  const int64_t fin_end = quick_->clock()->NowMicros();
  stats_.finish_txn_micros.Record(fin_end - fin_start);
  QUICK_RETURN_IF_ERROR(st);
  if (fenced) {
    stats_.leases_lost.Increment();
    stats_.terminal_fenced.Increment();
    hooks_.Record(job.leased.item.id, stage::kFenced, fin_start, fin_end,
                  "requeue");
    return Status::OK();
  }
  stats_.items_requeued.Increment();
  hooks_.Record(job.leased.item.id, stage::kRequeued, fin_start, fin_end,
                "delay_ms=" + std::to_string(delay) +
                    " errors=" + std::to_string(next_error_count));
  return st;
}

Status Consumer::FinishTerminalFailure(const WorkerJob& job,
                                       const Status& final_status,
                                       const RetryPolicy& policy) {
  fdb::Database* cluster = Cluster(job.cluster);
  const int64_t final_attempts = job.leased.item.error_count + 1;
  const char* reason;
  Alert::Kind legacy_kind;
  if (!final_status.IsPermanent()) {
    reason = "exhausted";
    legacy_kind = Alert::Kind::kDroppedAfterExhaustion;
  } else if (job.entry == nullptr) {
    reason = "unknown_job_type";
    legacy_kind = Alert::Kind::kUnknownJobType;
  } else {
    reason = "permanent";
    legacy_kind = Alert::Kind::kPermanentFailure;
  }

  bool fenced = false;
  std::vector<EnqueueFollowUp> follow_ups;
  std::vector<std::string> continuation_ids;
  const int64_t fin_start = quick_->clock()->NowMicros();
  Status st = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone(&txn, job.zone_subspace, quick_->clock(),
                       job.fifo_zone);
    Status c = policy.quarantine_on_failure
                   ? zone.Quarantine(job.leased.item.id, job.leased.lease_id,
                                     reason, final_status.message())
                   : zone.Complete(job.leased.item.id, job.leased.lease_id);
    if (c.IsNotFound() || c.IsLeaseLost()) {
      fenced = true;  // retaken by a live consumer, or already terminal
      return Status::OK();
    }
    fenced = false;
    QUICK_RETURN_IF_ERROR(c);
    // The TerminalHandler's extras (compensation chain, record update)
    // commit WITH the dead-lettering — the saga-rollback launch point.
    if (HasExtras(job.terminal_result)) {
      return ApplyResultExtras(txn, job, job.terminal_result, &follow_ups,
                               &continuation_ids);
    }
    return Status::OK();
  });
  const int64_t fin_end = quick_->clock()->NowMicros();
  stats_.finish_txn_micros.Record(fin_end - fin_start);
  health_.Observe(job.cluster, st);
  QUICK_RETURN_IF_ERROR(st);
  if (fenced) {
    stats_.leases_lost.Increment();
    stats_.terminal_fenced.Increment();
    hooks_.Record(job.leased.item.id, stage::kFenced, fin_start, fin_end,
                  reason);
    return Status::OK();
  }
  AfterResultExtras(job, job.terminal_result, follow_ups, continuation_ids);
  if (policy.quarantine_on_failure) {
    stats_.items_quarantined.Increment();
    MetricsRegistry::Default()->GetCounter("quick.deadletter.quarantined")
        ->Increment();
    hooks_.Record(job.leased.item.id, stage::kQuarantined, fin_start, fin_end,
                  reason);
    RaiseAlert(Alert::Kind::kQuarantined, job, final_attempts,
               std::string(reason) + ": " + final_status.message());
  } else {
    stats_.items_dropped_permanent.Increment();
    MetricsRegistry::Default()->GetCounter("quick.deadletter.dropped_legacy")
        ->Increment();
    hooks_.Record(job.leased.item.id, stage::kDropped, fin_start, fin_end,
                  reason);
    RaiseAlert(legacy_kind, job, final_attempts, final_status.message());
  }
  return Status::OK();
}

void Consumer::AsyncFinishItem(WorkerJob job, const Status& final_status) {
  // FinishItem's pipeline twin: same three transitions (complete, terminal
  // failure, transient requeue), same lease fencing, but the commit holds
  // a window slot instead of this thread.
  if (crashed_.load()) return;  // completion never lands (§5)
  if (!final_status.ok()) {
    quick_->tenant_metrics()->OnError(job.db_id, 1);
  }
  fdb::Database* cluster = Cluster(job.cluster);
  const bool is_local =
      StartsWith(job.zone_name, quick_->config().top_zone_name);
  auto jp = std::make_shared<WorkerJob>(std::move(job));
  auto fenced = std::make_shared<bool>(false);
  const int64_t fin_start = quick_->clock()->NowMicros();

  if (final_status.ok()) {
    auto follow_ups = std::make_shared<std::vector<EnqueueFollowUp>>();
    auto cont_ids = std::make_shared<std::vector<std::string>>();
    BeginTxn();
    fdb::RunTransactionAsync(
        cluster,
        [this, jp, fenced, follow_ups, cont_ids](fdb::Transaction& txn) {
          ck::QueueZone zone(&txn, jp->zone_subspace, quick_->clock(),
                             jp->fifo_zone);
          Status c = zone.Complete(jp->leased.item.id, jp->leased.lease_id);
          if (c.IsNotFound() || c.IsLeaseLost()) {
            *fenced = true;
            return Status::OK();
          }
          *fenced = false;
          QUICK_RETURN_IF_ERROR(c);
          if (HasExtras(jp->result)) {
            return ApplyResultExtras(txn, *jp, jp->result, follow_ups.get(),
                                     cont_ids.get());
          }
          return Status::OK();
        },
        exec_.get(), cancel_)
        .OnReady([this, jp, fenced, follow_ups, cont_ids, fin_start,
                  is_local](const Status& st) {
          const int64_t fin_end = quick_->clock()->NowMicros();
          stats_.finish_txn_micros.Record(fin_end - fin_start);
          health_.Observe(jp->cluster, st);
          if (st.ok()) {
            if (*fenced) {
              stats_.leases_lost.Increment();
              stats_.terminal_fenced.Increment();
              hooks_.Record(jp->leased.item.id, stage::kFenced, fin_start,
                            fin_end, "complete");
            } else {
              stats_.items_processed.Increment();
              if (is_local) stats_.local_items_processed.Increment();
              hooks_.Record(jp->leased.item.id, stage::kCompleted, fin_start,
                            fin_end, is_local ? "local" : "");
              AfterResultExtras(*jp, jp->result, *follow_ups, *cont_ids);
            }
          }
          EndTxn();
        });
    return;
  }

  const RetryPolicy policy =
      jp->entry != nullptr ? jp->entry->policy : RetryPolicy{};
  const int64_t next_error_count = jp->leased.item.error_count + 1;
  const bool exhausted = policy.max_attempts > 0 &&
                         next_error_count >= policy.max_attempts &&
                         policy.drop_on_exhaust;
  if (final_status.IsPermanent() || exhausted) {
    AsyncFinishTerminalFailure(jp, final_status, policy);
    return;
  }

  // Transient failure: fenced requeue with backoff.
  if (policy.alert_after_errors > 0 &&
      next_error_count >= policy.alert_after_errors) {
    RaiseAlert(Alert::Kind::kRepeatedFailures, *jp, next_error_count,
               final_status.message());
  }
  const int64_t delay =
      policy.BackoffForErrorCount(jp->leased.item.error_count);
  BeginTxn();
  fdb::RunTransactionAsync(
      cluster,
      [this, jp, fenced, delay](fdb::Transaction& txn) {
        ck::QueueZone zone(&txn, jp->zone_subspace, quick_->clock(),
                           jp->fifo_zone);
        Status c = zone.Requeue(jp->leased.item.id, delay,
                                /*increment_error_count=*/true,
                                jp->leased.lease_id);
        if (c.IsNotFound() || c.IsLeaseLost()) {
          *fenced = true;
          return Status::OK();
        }
        *fenced = false;
        return c;
      },
      exec_.get(), cancel_)
      .OnReady([this, jp, fenced, fin_start, delay,
                next_error_count](const Status& st) {
        const int64_t fin_end = quick_->clock()->NowMicros();
        stats_.finish_txn_micros.Record(fin_end - fin_start);
        if (st.ok()) {
          if (*fenced) {
            stats_.leases_lost.Increment();
            stats_.terminal_fenced.Increment();
            hooks_.Record(jp->leased.item.id, stage::kFenced, fin_start,
                          fin_end, "requeue");
          } else {
            stats_.items_requeued.Increment();
            hooks_.Record(jp->leased.item.id, stage::kRequeued, fin_start,
                          fin_end,
                          "delay_ms=" + std::to_string(delay) +
                              " errors=" + std::to_string(next_error_count));
          }
        }
        EndTxn();
      });
}

void Consumer::AsyncFinishTerminalFailure(std::shared_ptr<WorkerJob> jp,
                                          const Status& final_status,
                                          const RetryPolicy& policy) {
  fdb::Database* cluster = Cluster(jp->cluster);
  const int64_t final_attempts = jp->leased.item.error_count + 1;
  const char* reason;
  Alert::Kind legacy_kind;
  if (!final_status.IsPermanent()) {
    reason = "exhausted";
    legacy_kind = Alert::Kind::kDroppedAfterExhaustion;
  } else if (jp->entry == nullptr) {
    reason = "unknown_job_type";
    legacy_kind = Alert::Kind::kUnknownJobType;
  } else {
    reason = "permanent";
    legacy_kind = Alert::Kind::kPermanentFailure;
  }

  auto fenced = std::make_shared<bool>(false);
  auto follow_ups = std::make_shared<std::vector<EnqueueFollowUp>>();
  auto cont_ids = std::make_shared<std::vector<std::string>>();
  const int64_t fin_start = quick_->clock()->NowMicros();
  const std::string failure_msg = final_status.message();
  const bool quarantine = policy.quarantine_on_failure;
  BeginTxn();
  fdb::RunTransactionAsync(
      cluster,
      [this, jp, fenced, follow_ups, cont_ids, quarantine, reason,
       failure_msg](fdb::Transaction& txn) {
        ck::QueueZone zone(&txn, jp->zone_subspace, quick_->clock(),
                           jp->fifo_zone);
        Status c = quarantine
                       ? zone.Quarantine(jp->leased.item.id,
                                         jp->leased.lease_id, reason,
                                         failure_msg)
                       : zone.Complete(jp->leased.item.id,
                                       jp->leased.lease_id);
        if (c.IsNotFound() || c.IsLeaseLost()) {
          *fenced = true;
          return Status::OK();
        }
        *fenced = false;
        QUICK_RETURN_IF_ERROR(c);
        if (HasExtras(jp->terminal_result)) {
          return ApplyResultExtras(txn, *jp, jp->terminal_result,
                                   follow_ups.get(), cont_ids.get());
        }
        return Status::OK();
      },
      exec_.get(), cancel_)
      .OnReady([this, jp, fenced, follow_ups, cont_ids, fin_start, quarantine,
                reason, legacy_kind, final_attempts,
                failure_msg](const Status& st) {
        const int64_t fin_end = quick_->clock()->NowMicros();
        stats_.finish_txn_micros.Record(fin_end - fin_start);
        health_.Observe(jp->cluster, st);
        if (st.ok()) {
          if (*fenced) {
            stats_.leases_lost.Increment();
            stats_.terminal_fenced.Increment();
            hooks_.Record(jp->leased.item.id, stage::kFenced, fin_start,
                          fin_end, reason);
          } else if (quarantine) {
            AfterResultExtras(*jp, jp->terminal_result, *follow_ups,
                              *cont_ids);
            stats_.items_quarantined.Increment();
            MetricsRegistry::Default()
                ->GetCounter("quick.deadletter.quarantined")
                ->Increment();
            hooks_.Record(jp->leased.item.id, stage::kQuarantined, fin_start,
                          fin_end, reason);
            RaiseAlert(Alert::Kind::kQuarantined, *jp, final_attempts,
                       std::string(reason) + ": " + failure_msg);
          } else {
            AfterResultExtras(*jp, jp->terminal_result, *follow_ups,
                              *cont_ids);
            stats_.items_dropped_permanent.Increment();
            MetricsRegistry::Default()
                ->GetCounter("quick.deadletter.dropped_legacy")
                ->Increment();
            hooks_.Record(jp->leased.item.id, stage::kDropped, fin_start,
                          fin_end, reason);
            RaiseAlert(legacy_kind, *jp, final_attempts, failure_msg);
          }
        }
        EndTxn();
      });
}

// ---------------------------------------------------------------------------
// Lease extender.
// ---------------------------------------------------------------------------

void Consumer::ExtenderLoop() {
  while (running_.load()) {
    quick_->clock()->SleepMillis(config_.lease_extension_interval_millis);
    if (!running_.load()) break;
    ExtendOnce();
  }
}

void Consumer::ExtendOnce() {
  if (crashed_.load()) return;  // held leases run out and expire
  std::vector<ExtensionEntry> entries;
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    entries.reserve(extensions_.size());
    for (const auto& [key, e] : extensions_) entries.push_back(e);
  }
  for (const ExtensionEntry& e : entries) {
    fdb::Database* cluster = Cluster(e.cluster);
    Status st = fdb::RunTransaction(
        cluster,
        [&](fdb::Transaction& txn) {
          ck::QueueZone zone(&txn, e.zone_subspace, quick_->clock(),
                             e.fifo_zone);
          return zone.ExtendLease(e.item_id, e.lease_id,
                                  config_.item_lease_millis);
        },
        /*max_attempts=*/3);
    if (st.ok()) {
      stats_.lease_extensions.Increment();
    } else if (st.IsLeaseLost() || st.IsNotFound()) {
      // Another consumer owns the item now; interrupt processing (Alg. 3).
      e.lease_lost->store(true);
      stats_.leases_lost.Increment();
    }
  }
}

// ---------------------------------------------------------------------------
// Bookkeeping.
// ---------------------------------------------------------------------------

bool Consumer::MarkInFlight(const std::string& key) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return in_flight_.insert(key).second;
}

void Consumer::UnmarkInFlight(const std::string& key) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  in_flight_.erase(key);
}

bool Consumer::TryAcquireThrottle(const std::string& job_type,
                                  int max_concurrent) {
  std::lock_guard<std::mutex> lock(throttle_mu_);
  int& count = throttle_counts_[job_type];
  if (count >= max_concurrent) return false;
  ++count;
  return true;
}

void Consumer::ReleaseThrottle(const std::string& job_type) {
  std::lock_guard<std::mutex> lock(throttle_mu_);
  int& count = throttle_counts_[job_type];
  if (count > 0) --count;
}

}  // namespace quick::core
