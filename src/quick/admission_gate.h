#ifndef QUICK_QUICK_ADMISSION_GATE_H_
#define QUICK_QUICK_ADMISSION_GATE_H_

#include <cstdint>
#include <string>

#include "cloudkit/database_id.h"
#include "common/status.h"

namespace quick::core {

/// Outcome of one admission check. `level` names the hierarchy level that
/// refused ("tenant", "app", "cluster") for metrics/trace detail; it is a
/// static string owned by the gate.
struct AdmissionDecision {
  enum class Outcome {
    kAdmit,     // proceed
    kThrottle,  // refuse now, retry after retry_after_millis
    kShed,      // refuse outright; the tenant is far over fair share
  };

  Outcome outcome = Outcome::kAdmit;
  int64_t retry_after_millis = 0;
  const char* level = "";

  bool admitted() const { return outcome == Outcome::kAdmit; }
};

/// Admission interface the quick layer calls; implemented by
/// control::AdmissionController. Decoupled so quick_core does not depend
/// on the control plane — a Quick without a gate admits everything.
///
/// Implementations must be thread-safe: enqueue paths and every consumer
/// dispatch worker consult the gate concurrently.
class AdmissionGate {
 public:
  virtual ~AdmissionGate() = default;

  /// Producer-side check on Quick::Enqueue/EnqueueBatch (`cost` = items).
  virtual AdmissionDecision AdmitEnqueue(const ck::DatabaseId& db_id,
                                         const std::string& cluster,
                                         int64_t cost) = 0;

  /// Consumer-side check before dispatching a dequeued item to a worker.
  virtual AdmissionDecision AdmitDispatch(const ck::DatabaseId& db_id,
                                          const std::string& cluster,
                                          int64_t cost) = 0;
};

/// Maps a refusal to the client-visible Status. The retry-after hint rides
/// in the message ("retry_after_ms=N") so it survives Status's code+message
/// shape; RetryAfterMillis() parses it back.
inline Status ThrottledStatus(const AdmissionDecision& d) {
  const std::string detail = std::string("level=") + d.level +
                             " retry_after_ms=" +
                             std::to_string(d.retry_after_millis);
  if (d.outcome == AdmissionDecision::Outcome::kShed) {
    return Status::ResourceExhausted("admission shed: " + detail);
  }
  return Status::Throttled("admission throttled: " + detail);
}

/// Retry-after hint carried by a kThrottled/kResourceExhausted status, or
/// -1 when absent.
inline int64_t RetryAfterMillis(const Status& st) {
  static constexpr const char* kTag = "retry_after_ms=";
  const std::string& m = st.message();
  const size_t pos = m.find(kTag);
  if (pos == std::string::npos) return -1;
  int64_t value = 0;
  bool any = false;
  for (size_t i = pos + std::string(kTag).size(); i < m.size(); ++i) {
    const char c = m[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + (c - '0');
    any = true;
  }
  return any ? value : -1;
}

}  // namespace quick::core

#endif  // QUICK_QUICK_ADMISSION_GATE_H_
