#include "quick/cluster_health.h"

namespace quick::core {

ClusterHealth::Entry* ClusterHealth::GetEntryLocked(
    const std::string& cluster) {
  auto& slot = entries_[cluster];
  if (!slot) slot = std::make_unique<Entry>(config_, clock_);
  return slot.get();
}

Counter* ClusterHealth::BreakerCounter(const std::string& cluster,
                                       const char* event) {
  return metrics_->GetCounter("quick.breaker." + cluster + "." + event);
}

bool ClusterHealth::ShouldSkip(const std::string& cluster) {
  if (!config_.enabled) return false;
  bool skip;
  {
    std::lock_guard<std::mutex> lock(mu_);
    skip = !GetEntryLocked(cluster)->breaker.AllowRequest();
  }
  if (skip) BreakerCounter(cluster, "skipped")->Increment();
  return skip;
}

void ClusterHealth::Observe(const std::string& cluster, const Status& status) {
  if (!config_.enabled) return;
  const bool failure = !status.ok() && IsInfraFailure(status);
  if (!status.ok() && !failure) return;  // contention: not a health signal

  CircuitBreaker::Transition transition;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CircuitBreaker& breaker = GetEntryLocked(cluster)->breaker;
    transition =
        failure ? breaker.RecordFailure() : breaker.RecordSuccess();
  }
  switch (transition) {
    case CircuitBreaker::Transition::kNone:
      return;
    case CircuitBreaker::Transition::kOpened:
      BreakerCounter(cluster, "opened")->Increment();
      break;
    case CircuitBreaker::Transition::kReopened:
      BreakerCounter(cluster, "reopened")->Increment();
      return;  // probe failed: still the same outage, no fresh alert
    case CircuitBreaker::Transition::kClosed:
      BreakerCounter(cluster, "closed")->Increment();
      break;
  }
  RaiseTransitionAlert(cluster, transition, status);
}

CircuitBreaker::State ClusterHealth::StateOf(const std::string& cluster) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cluster);
  if (it == entries_.end()) return CircuitBreaker::State::kClosed;
  return it->second->breaker.state();
}

void ClusterHealth::RaiseTransitionAlert(
    const std::string& cluster, CircuitBreaker::Transition transition,
    const Status& status) {
  if (alert_sink_ == nullptr) return;
  Alert alert;
  alert.kind = transition == CircuitBreaker::Transition::kOpened
                   ? Alert::Kind::kBreakerOpened
                   : Alert::Kind::kBreakerClosed;
  alert.cluster = cluster;
  alert.detail = transition == CircuitBreaker::Transition::kOpened
                     ? "consumer " + consumer_id_ +
                           " opened breaker; last error: " + status.ToString()
                     : "consumer " + consumer_id_ +
                           " closed breaker after successful probes";
  alert_sink_->Raise(alert);
}

}  // namespace quick::core
