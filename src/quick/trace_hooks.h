#ifndef QUICK_QUICK_TRACE_HOOKS_H_
#define QUICK_QUICK_TRACE_HOOKS_H_

#include <string>
#include <utility>

#include "common/clock.h"
#include "common/trace.h"

namespace quick::core {

/// Span taxonomy of the QuiCK item lifecycle. A work item's chain is keyed
/// by its item id; a pointer's chain by its pointer key (which doubles as
/// its top-level item id). A well-formed work-item incarnation reads
///   birth stage -> (top_leased | dequeued) -> execute* -> terminal stage
/// with any number of non-terminal requeued/fenced spans in between.
namespace stage {
/// Birth stages — each one opens a new incarnation of the chain.
inline constexpr const char* kEnqueued = "enqueued";
inline constexpr const char* kDeadLetterRequeued = "deadletter_requeued";
/// Pointer chain birth: the enqueue protocol created the Q_C pointer.
inline constexpr const char* kPointerCreated = "pointer_created";
/// Top-level lease obtained (pointer or local item).
inline constexpr const char* kTopLeased = "top_leased";
/// Failed lease attempt; detail distinguishes "read" vs "commit" (Fig. 7).
inline constexpr const char* kLeaseCollision = "lease_collision";
/// Work item batch-dequeued from its queue zone (parent: pointer trace).
inline constexpr const char* kDequeued = "dequeued";
/// One handler attempt (detail carries attempt index and outcome).
inline constexpr const char* kExecute = "execute";
/// Non-terminal transition: the item re-vests and will be retried.
inline constexpr const char* kRequeued = "requeued";
/// Admission-control denials. Pre-birth on the enqueue path (the item was
/// never stored, so no incarnation opens); on the dispatch path the item
/// requeues, so neither is terminal.
inline constexpr const char* kAdmissionThrottled = "admission_throttled";
inline constexpr const char* kAdmissionShed = "admission_shed";
/// Terminal transitions — exactly one per incarnation commits.
inline constexpr const char* kCompleted = "completed";
inline constexpr const char* kQuarantined = "quarantined";
inline constexpr const char* kDropped = "dropped";
/// A transition this consumer attempted was fenced off: its lease had been
/// superseded or the item was already gone. Not terminal by itself — the
/// retaking consumer records the true terminal — but a chain may legally
/// end on a fence when the fenced consumer's own commit actually landed
/// under an unknown-result fault (the "fenced-then-retaken" resolution).
inline constexpr const char* kFenced = "fenced";
/// Workflow lifecycle stages. These live on the *workflow's* trace id (the
/// saga instance id), parented to the step item's chain — so a whole saga
/// renders as one chain across many queue items without adding spans to the
/// per-item taxonomy above.
inline constexpr const char* kWorkflowStarted = "wf_started";
inline constexpr const char* kWorkflowStepStart = "wf_step_start";
inline constexpr const char* kWorkflowStepFinish = "wf_step_finish";
inline constexpr const char* kWorkflowCompensate = "wf_compensate";
inline constexpr const char* kWorkflowDone = "wf_done";
/// Outbox relay applied (or deduped) one external effect.
inline constexpr const char* kOutboxRelay = "outbox_relay";
}  // namespace stage

/// True for the stages that remove an item from its queue for good.
inline bool IsTerminalStage(const std::string& name) {
  return name == stage::kCompleted || name == stage::kQuarantined ||
         name == stage::kDropped;
}

/// True for the stages that open a new incarnation of an item's chain
/// (first enqueue, or an operator requeue out of the quarantine).
inline bool IsBirthStage(const std::string& name) {
  return name == stage::kEnqueued || name == stage::kDeadLetterRequeued;
}

/// Thin span-recording facade bound to one actor. Every producer/consumer
/// call site goes through these helpers so disabled tracing costs one
/// relaxed atomic load and no string work.
class TraceHooks {
 public:
  TraceHooks(Tracer* tracer, Clock* clock, std::string actor)
      : tracer_(tracer), clock_(clock), actor_(std::move(actor)) {}

  bool enabled() const { return tracer_ != nullptr && tracer_->enabled(); }

  int64_t NowMicros() const { return clock_->NowMicros(); }

  /// Records a span covering [start_micros, end_micros].
  void Record(const std::string& trace_id, const char* name,
              int64_t start_micros, int64_t end_micros,
              std::string detail = std::string(),
              std::string parent = std::string()) const {
    if (!enabled()) return;
    Span span;
    span.trace_id = trace_id;
    span.name = name;
    span.actor = actor_;
    span.detail = std::move(detail);
    span.parent_trace = std::move(parent);
    span.start_micros = start_micros;
    span.end_micros = end_micros;
    tracer_->Record(std::move(span));
  }

  /// Records an instantaneous span stamped with the current time.
  void Mark(const std::string& trace_id, const char* name,
            std::string detail = std::string(),
            std::string parent = std::string()) const {
    if (!enabled()) return;
    const int64_t now = clock_->NowMicros();
    Record(trace_id, name, now, now, std::move(detail), std::move(parent));
  }

  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_;
  Clock* clock_;
  std::string actor_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_TRACE_HOOKS_H_
