#ifndef QUICK_QUICK_JOB_REGISTRY_H_
#define QUICK_QUICK_JOB_REGISTRY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cloudkit/database_id.h"
#include "cloudkit/queued_item.h"
#include "common/backoff.h"
#include "common/clock.h"
#include "common/status.h"

namespace quick::fdb {
class Transaction;
}  // namespace quick::fdb

namespace quick::core {

/// Execution context handed to a work-item handler. Handlers should poll
/// Expired() / LeaseLost() at convenient points and return early — QuiCK
/// bounds execution time and interrupts processing when the lease extender
/// loses the lease (Alg. 3).
struct WorkContext {
  ck::QueuedItem item;
  ck::DatabaseId db_id;
  std::string zone;
  /// Id of the consumer executing this attempt (handlers use it for
  /// logging and per-consumer behaviour in tests).
  std::string consumer_id;
  Clock* clock = nullptr;
  int64_t deadline_millis = 0;
  std::atomic<bool>* lease_lost = nullptr;
  int attempt = 0;

  bool Expired() const {
    return clock != nullptr && clock->NowMillis() > deadline_millis;
  }
  bool LeaseLost() const {
    return lease_lost != nullptr && lease_lost->load();
  }
};

using Handler = std::function<Status(WorkContext&)>;

/// A work item the finishing handler asks QuiCK to enqueue atomically with
/// its own Complete — Gray's queued-transaction pattern ("Queues Are
/// Databases"): the dequeue of step N and the enqueue of step N+1 commit in
/// the same FoundationDB transaction, so a crash at any point leaves either
/// both or neither. The continuation targets the finished item's own
/// database (same cluster by construction); local items continue into their
/// cluster's top-level queue.
struct ContinuationEnqueue {
  std::string job_type;
  std::string payload;
  int64_t priority = 0;
  /// Optional idempotency id; random when empty. Workflow steps use
  /// deterministic ids so a re-executed finish cannot fork the chain.
  std::string id;
  int64_t vesting_delay_millis = 0;
};

/// An intended external side-effect, recorded as a transactional-outbox row
/// in the same transaction as the item's finish. The OutboxRelay later
/// applies it to the external store under `idempotency_key` — a crash
/// between the external write and the row's deletion can duplicate the
/// *attempt*, never the *effect*.
struct OutboxEffect {
  /// External system / destination key (free-form; the relay passes it
  /// through to the effect store).
  std::string target;
  /// Globally unique per intended effect; the dedupe handle.
  std::string idempotency_key;
  std::string payload;
};

/// What a handler produced: the final status plus everything that must
/// commit atomically with the item's successful Complete. Continuations,
/// effects, and the hook are applied only when `status` is OK and the
/// terminal transition is not fenced; a requeued (transient-failure) item
/// applies nothing.
struct WorkResult {
  Status status;
  std::vector<ContinuationEnqueue> continuations;
  std::vector<OutboxEffect> effects;
  /// Runs inside the finish transaction after the queue transition, for
  /// arbitrary same-transaction state (e.g. the workflow record). May be
  /// re-executed on transaction retry — must be idempotent within the
  /// transaction, like every QuiCK transaction body.
  std::function<Status(fdb::Transaction&)> txn_hook;

  WorkResult() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Status-only results keep
  // plain handlers a one-line return.
  WorkResult(Status s) : status(std::move(s)) {}
};

using WorkHandler = std::function<WorkResult(WorkContext&)>;

/// Invoked when the item leaves the queue through a terminal *failure*
/// (permanent error or retry exhaustion): the returned result's
/// continuations/effects/hook commit in the same transaction as the
/// quarantine (or legacy drop) — this is how a saga launches its
/// compensation chain atomically with the failing step's dead-lettering.
/// The returned status is ignored; the transition itself is the outcome.
using TerminalHandler =
    std::function<WorkResult(WorkContext&, const Status& final_status)>;

/// Per-job-type retry/throttle policy (§6: "each type of queued items can
/// set its own retry policy").
struct RetryPolicy {
  /// Immediate re-executions inside the Worker before requeueing (Alg. 3).
  int max_inline_retries = 1;
  /// Requeue backoff: initial * 2^error_count, capped (exponential
  /// backoff on the item's error count, §6).
  int64_t backoff_initial_millis = 1000;
  int64_t backoff_max_millis = 60000;
  /// Total attempts before the drop policy applies; 0 = retry indefinitely
  /// (which in production "would eventually cause alerts").
  int max_attempts = 0;
  /// When attempts are exhausted: true removes the item from the queue
  /// (see quarantine_on_failure for where it goes), false keeps retrying
  /// at the max backoff.
  bool drop_on_exhaust = true;
  /// Terminal-failure disposition. True (the default) moves permanently-
  /// failed, retry-exhausted, and unknown-job-type items into the zone's
  /// dead-letter quarantine — transactionally with the queue removal — so
  /// no item is ever silently lost; operators drain the quarantine via
  /// QuickAdmin. False reproduces the legacy behaviour of deleting the
  /// item outright, leaving only an alert as a trace.
  bool quarantine_on_failure = true;
  /// Per-consumer cap on concurrently processed items of this type
  /// (per-topic throttling, §7); 0 = unlimited.
  int max_concurrent = 0;
  /// Execution bound for one attempt (execution_bound_t, Alg. 3).
  int64_t execution_bound_millis = 30000;
  /// Raise a kRepeatedFailures alert once an item's error count reaches
  /// this value (0 disables) — the "eventually cause alerts and manual
  /// mitigation" hook of §6.
  int64_t alert_after_errors = 0;

  int64_t BackoffForErrorCount(int64_t error_count) const {
    ExponentialBackoff b(backoff_initial_millis, backoff_max_millis);
    return b.DelayForAttempt(static_cast<int>(
        std::min<int64_t>(error_count, 30)));
  }
};

/// Maps job types to handlers and policies. Registration happens at
/// startup; lookups are lock-free afterwards in spirit (a mutex guards the
/// map but contention is nil).
class JobRegistry {
 public:
  struct Entry {
    WorkHandler handler;
    RetryPolicy policy;
    /// May be null; see TerminalHandler.
    TerminalHandler on_terminal;
  };

  /// Plain handlers: the Status is the whole result (no continuations).
  void Register(const std::string& job_type, Handler handler,
                RetryPolicy policy = {}) {
    RegisterWork(
        job_type,
        [handler = std::move(handler)](WorkContext& ctx) {
          return WorkResult(handler(ctx));
        },
        policy);
  }

  /// Full-result handlers (transactional continuations, outbox effects,
  /// same-transaction hooks), with an optional terminal-failure handler.
  void RegisterWork(const std::string& job_type, WorkHandler handler,
                    RetryPolicy policy = {},
                    TerminalHandler on_terminal = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[job_type] = std::make_shared<Entry>(
        Entry{std::move(handler), policy, std::move(on_terminal)});
  }

  /// nullptr when no handler is registered for `job_type`.
  std::shared_ptr<const Entry> Find(const std::string& job_type) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(job_type);
    return it == entries_.end() ? nullptr : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
};

}  // namespace quick::core

#endif  // QUICK_QUICK_JOB_REGISTRY_H_
