#include "reclayer/record_store.h"

#include "common/bytes.h"

namespace quick::rl {

namespace {
// Child subspace tags. Strings keep keys debuggable; the per-key overhead
// is a few bytes.
constexpr std::string_view kRecordsTag = "r";
constexpr std::string_view kIndexesTag = "i";
constexpr std::string_view kHeadersTag = "h";
constexpr std::string_view kStatesTag = "st";
constexpr size_t kVersionstampBytes = 10;
}  // namespace

RecordStore::RecordStore(fdb::Transaction* txn, tup::Subspace subspace,
                         const RecordMetadata* metadata)
    : txn_(txn),
      subspace_(std::move(subspace)),
      records_(subspace_.Sub(kRecordsTag)),
      indexes_(subspace_.Sub(kIndexesTag)),
      headers_(subspace_.Sub(kHeadersTag)),
      states_(subspace_.Sub(kStatesTag)),
      metadata_(metadata) {}

std::string RecordStore::RecordKey(const tup::Tuple& pk) const {
  return records_.Pack(pk);
}

tup::Tuple RecordStore::IndexedValues(const IndexDef& index,
                                      const Record& record) const {
  tup::Tuple values;
  for (const std::string& field : index.fields) {
    values.Add(record.ElementOrNull(field));
  }
  return values;
}

Status RecordStore::MaintainVersionIndexes(const std::string& record_type,
                                           const tup::Tuple& pk,
                                           bool deleting) {
  const std::string pk_bytes = pk.Encode();
  for (const IndexDef& index : metadata_->indexes()) {
    if (index.kind != IndexKind::kVersion || !index.Covers(record_type)) {
      continue;
    }
    // Each version index keeps its own per-record header with the stamp of
    // the entry it currently holds, so entries can be cleared later even
    // though their keys embed a commit version.
    const std::string header_key = VersionHeaderKey(index.name, pk);
    QUICK_ASSIGN_OR_RETURN(std::optional<std::string> old_stamp,
                           txn_->Get(header_key));
    const bool existed =
        old_stamp.has_value() && old_stamp->size() == kVersionstampBytes;
    if (deleting) {
      if (existed) {
        txn_->Clear(VersionIndexPrefix(index.name) + *old_stamp + pk_bytes);
        txn_->Clear(header_key);
      }
      continue;
    }
    if (index.sticky_version && existed) {
      continue;  // insertion-order index: the original entry stands
    }
    if (existed) {
      txn_->Clear(VersionIndexPrefix(index.name) + *old_stamp + pk_bytes);
    }
    txn_->SetVersionstampedKey(VersionIndexPrefix(index.name), pk_bytes, "");
    txn_->SetVersionstampedValue(header_key, "");
  }
  return Status::OK();
}

Status RecordStore::RemoveIndexEntries(const Record& record,
                                       const tup::Tuple& pk) {
  for (const IndexDef& index : metadata_->indexes()) {
    if (!index.Covers(record.type())) continue;
    tup::Tuple values = IndexedValues(index, record);
    switch (index.kind) {
      case IndexKind::kValue: {
        tup::Tuple key = tup::Tuple().AddString(index.name);
        key.Concat(values);
        key.Concat(pk);
        txn_->Clear(indexes_.Pack(key));
        break;
      }
      case IndexKind::kCount: {
        tup::Tuple key = tup::Tuple().AddString(index.name);
        key.Concat(values);
        txn_->Atomic(fdb::AtomicOp::kAdd, indexes_.Pack(key),
                     EncodeLittleEndian64(static_cast<uint64_t>(-1)));
        break;
      }
      case IndexKind::kVersion:
        break;  // handled by MaintainVersionIndexes
    }
  }
  return MaintainVersionIndexes(record.type(), pk, /*deleting=*/true);
}

Status RecordStore::SaveRecord(const Record& record) {
  const RecordTypeDef* type = metadata_->FindRecordType(record.type());
  if (type == nullptr) {
    return Status::InvalidArgument("unknown record type " + record.type());
  }
  QUICK_RETURN_IF_ERROR(record.Validate(*type));
  QUICK_ASSIGN_OR_RETURN(tup::Tuple pk, record.PrimaryKey(*type));

  // Index maintenance needs the previous image to clear stale entries.
  const std::string key = RecordKey(pk);
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> old_bytes,
                         txn_->Get(key));
  std::optional<Record> old_record;
  if (old_bytes.has_value()) {
    QUICK_ASSIGN_OR_RETURN(Record old, Record::Deserialize(*old_bytes));
    old_record = std::move(old);
  }
  txn_->Set(key, record.Serialize());

  // Per-index diff. Entries whose indexed values did not change are left
  // untouched: updates to a record must not write (and hence not conflict
  // on) index keys they do not move — QuiCK's pointer index relies on this
  // ("updated only on pointer creations or deletions, never on updates").
  for (const IndexDef& index : metadata_->indexes()) {
    const bool covers_new = index.Covers(record.type());
    const bool covers_old =
        old_record.has_value() && index.Covers(old_record->type());
    std::optional<tup::Tuple> new_values =
        covers_new ? std::optional<tup::Tuple>(IndexedValues(index, record))
                   : std::nullopt;
    std::optional<tup::Tuple> old_values =
        covers_old
            ? std::optional<tup::Tuple>(IndexedValues(index, *old_record))
            : std::nullopt;
    if (old_values.has_value() && new_values.has_value() &&
        *old_values == *new_values) {
      continue;  // unchanged entry / unchanged count group
    }
    switch (index.kind) {
      case IndexKind::kValue: {
        if (old_values.has_value()) {
          tup::Tuple old_key = tup::Tuple().AddString(index.name);
          old_key.Concat(*old_values);
          old_key.Concat(pk);
          txn_->Clear(indexes_.Pack(old_key));
        }
        if (new_values.has_value()) {
          tup::Tuple new_key = tup::Tuple().AddString(index.name);
          new_key.Concat(*new_values);
          new_key.Concat(pk);
          txn_->Set(indexes_.Pack(new_key), "");
        }
        break;
      }
      case IndexKind::kCount: {
        if (old_values.has_value()) {
          tup::Tuple old_key = tup::Tuple().AddString(index.name);
          old_key.Concat(*old_values);
          txn_->Atomic(fdb::AtomicOp::kAdd, indexes_.Pack(old_key),
                       EncodeLittleEndian64(static_cast<uint64_t>(-1)));
        }
        if (new_values.has_value()) {
          tup::Tuple new_key = tup::Tuple().AddString(index.name);
          new_key.Concat(*new_values);
          txn_->Atomic(fdb::AtomicOp::kAdd, indexes_.Pack(new_key),
                       EncodeLittleEndian64(1));
        }
        break;
      }
      case IndexKind::kVersion:
        break;  // handled below
    }
  }
  return MaintainVersionIndexes(record.type(), pk, /*deleting=*/false);
}

Result<std::optional<Record>> RecordStore::LoadRecord(const std::string& type,
                                                      const tup::Tuple& pk,
                                                      bool snapshot) {
  tup::Tuple full_pk = tup::Tuple().AddString(type);
  full_pk.Concat(pk);
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> bytes,
                         txn_->Get(RecordKey(full_pk), snapshot));
  if (!bytes.has_value()) return std::optional<Record>(std::nullopt);
  QUICK_ASSIGN_OR_RETURN(Record record, Record::Deserialize(*bytes));
  return std::optional<Record>(std::move(record));
}

Result<bool> RecordStore::DeleteRecord(const std::string& type,
                                       const tup::Tuple& pk) {
  tup::Tuple full_pk = tup::Tuple().AddString(type);
  full_pk.Concat(pk);
  const std::string key = RecordKey(full_pk);
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> bytes, txn_->Get(key));
  if (!bytes.has_value()) return false;
  QUICK_ASSIGN_OR_RETURN(Record record, Record::Deserialize(*bytes));
  QUICK_RETURN_IF_ERROR(RemoveIndexEntries(record, full_pk));
  txn_->Clear(key);
  return true;
}

Result<std::vector<Record>> RecordStore::ScanRecords(int limit) {
  fdb::RangeOptions opts;
  opts.limit = limit;
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> kvs,
                         txn_->GetRange(records_.Range(), opts));
  std::vector<Record> out;
  out.reserve(kvs.size());
  for (const fdb::KeyValue& kv : kvs) {
    QUICK_ASSIGN_OR_RETURN(Record record, Record::Deserialize(kv.value));
    out.push_back(std::move(record));
  }
  return out;
}

Result<std::vector<IndexEntry>> RecordStore::ScanIndex(
    const std::string& index_name, const tup::Tuple& prefix,
    const IndexScanOptions& options) {
  tup::Tuple scan = tup::Tuple().AddString(index_name);
  scan.Concat(prefix);
  const KeyRange range = indexes_.Range(scan);
  return ScanIndexRangeImplByKeys(index_name, range, options);
}

Result<std::vector<IndexEntry>> RecordStore::ScanIndexRange(
    const std::string& index_name, const std::optional<tup::Tuple>& begin,
    const std::optional<tup::Tuple>& end, const IndexScanOptions& options) {
  const KeyRange whole = indexes_.Range(tup::Tuple().AddString(index_name));
  KeyRange range = whole;
  if (begin.has_value()) {
    tup::Tuple b = tup::Tuple().AddString(index_name);
    b.Concat(*begin);
    range.begin = indexes_.Pack(b);
  }
  if (end.has_value()) {
    tup::Tuple e = tup::Tuple().AddString(index_name);
    e.Concat(*end);
    range.end = indexes_.Pack(e);
  }
  return ScanIndexRangeImplByKeys(index_name, range, options);
}

Status RecordStore::CheckIndexReadable(const std::string& index_name) {
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> state,
                         txn_->Get(IndexStateKey(index_name),
                                   /*snapshot=*/true));
  if (state.has_value() && DecodeLittleEndian64(*state) != 0) {
    return Status::FailedPrecondition("index " + index_name +
                                      " is write-only (still building)");
  }
  return Status::OK();
}

Result<std::vector<StoredRecord>> RecordStore::ScanRecordsPage(
    const std::optional<tup::Tuple>& after_primary_key, int limit) {
  KeyRange range = records_.Range();
  if (after_primary_key.has_value()) {
    range.begin = KeyAfter(records_.Pack(*after_primary_key));
  }
  fdb::RangeOptions opts;
  opts.limit = limit;
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> kvs,
                         txn_->GetRange(range, opts));
  std::vector<StoredRecord> out;
  out.reserve(kvs.size());
  for (const fdb::KeyValue& kv : kvs) {
    StoredRecord row;
    QUICK_ASSIGN_OR_RETURN(row.primary_key, records_.Unpack(kv.key));
    QUICK_ASSIGN_OR_RETURN(row.record, Record::Deserialize(kv.value));
    out.push_back(std::move(row));
  }
  return out;
}

Status RecordStore::BackfillIndexEntry(const std::string& index_name,
                                       const Record& record) {
  const IndexDef* index = metadata_->FindIndex(index_name);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index " + index_name);
  }
  if (index->kind != IndexKind::kValue) {
    return Status::InvalidArgument("only value indexes can be backfilled");
  }
  if (!index->Covers(record.type())) return Status::OK();
  const RecordTypeDef* type = metadata_->FindRecordType(record.type());
  if (type == nullptr) {
    return Status::InvalidArgument("unknown record type " + record.type());
  }
  QUICK_ASSIGN_OR_RETURN(tup::Tuple pk, record.PrimaryKey(*type));
  tup::Tuple key = tup::Tuple().AddString(index->name);
  key.Concat(IndexedValues(*index, record));
  key.Concat(pk);
  txn_->Set(indexes_.Pack(key), "");
  return Status::OK();
}

Result<std::vector<IndexEntry>> RecordStore::ScanIndexBounds(
    const std::string& index_name, const IndexBounds& bounds,
    const IndexScanOptions& options) {
  KeyRange range = indexes_.Range(tup::Tuple().AddString(index_name));
  if (bounds.begin.has_value()) {
    tup::Tuple b = tup::Tuple().AddString(index_name);
    b.Concat(*bounds.begin);
    range.begin = indexes_.Pack(b);
    if (!bounds.begin_inclusive) {
      // Skip the bound tuple and all its extensions: primary-key
      // continuations use tuple type codes < 0xFF.
      range.begin.push_back('\xFF');
    }
  }
  if (bounds.end.has_value()) {
    tup::Tuple e = tup::Tuple().AddString(index_name);
    e.Concat(*bounds.end);
    range.end = indexes_.Pack(e);
    if (bounds.end_inclusive) {
      range.end.push_back('\xFF');
    }
  }
  return ScanIndexRangeImplByKeys(index_name, range, options);
}

Result<std::optional<Record>> RecordStore::LoadByFullPrimaryKey(
    const tup::Tuple& full_pk, bool snapshot) {
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> bytes,
                         txn_->Get(RecordKey(full_pk), snapshot));
  if (!bytes.has_value()) return std::optional<Record>(std::nullopt);
  QUICK_ASSIGN_OR_RETURN(Record record, Record::Deserialize(*bytes));
  return std::optional<Record>(std::move(record));
}

Result<std::vector<IndexEntry>> RecordStore::ScanIndexRangeImplByKeys(
    const std::string& index_name, const KeyRange& range,
    const IndexScanOptions& options) {
  const IndexDef* index = metadata_->FindIndex(index_name);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index " + index_name);
  }
  QUICK_RETURN_IF_ERROR(CheckIndexReadable(index_name));
  if (index->kind != IndexKind::kValue) {
    return Status::InvalidArgument("index " + index_name +
                                   " is not a value index");
  }
  fdb::RangeOptions opts;
  opts.limit = options.limit;
  opts.reverse = options.reverse;
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> kvs,
                         txn_->GetRange(range, opts, options.snapshot));
  std::vector<IndexEntry> out;
  out.reserve(kvs.size());
  const size_t arity = index->fields.size();
  for (const fdb::KeyValue& kv : kvs) {
    QUICK_ASSIGN_OR_RETURN(tup::Tuple t, indexes_.Unpack(kv.key));
    // Layout: (index name, values..., primary key...).
    if (t.size() < 1 + arity) {
      return Status::Internal("corrupt index entry");
    }
    IndexEntry entry;
    for (size_t i = 1; i <= arity; ++i) entry.indexed_values.Add(t.at(i));
    for (size_t i = 1 + arity; i < t.size(); ++i) {
      entry.primary_key.Add(t.at(i));
    }
    out.push_back(std::move(entry));
  }
  return out;
}

Result<int64_t> RecordStore::GetCount(const std::string& index_name,
                                      const tup::Tuple& group, bool snapshot) {
  const IndexDef* index = metadata_->FindIndex(index_name);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index " + index_name);
  }
  if (index->kind != IndexKind::kCount) {
    return Status::InvalidArgument("index " + index_name +
                                   " is not a count index");
  }
  tup::Tuple key = tup::Tuple().AddString(index_name);
  key.Concat(group);
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> v,
                         txn_->Get(indexes_.Pack(key), snapshot));
  if (!v.has_value()) return int64_t{0};
  return static_cast<int64_t>(DecodeLittleEndian64(*v));
}

Result<std::vector<VersionIndexEntry>> RecordStore::ScanVersionIndex(
    const std::string& index_name,
    const std::optional<std::string>& after_versionstamp,
    const IndexScanOptions& options) {
  const IndexDef* index = metadata_->FindIndex(index_name);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index " + index_name);
  }
  if (index->kind != IndexKind::kVersion) {
    return Status::InvalidArgument("index " + index_name +
                                   " is not a version index");
  }
  const std::string prefix = VersionIndexPrefix(index_name);
  KeyRange range = KeyRange::Prefix(prefix);
  if (after_versionstamp.has_value()) {
    // Strictly after: increment the fixed-width stamp so every entry at the
    // given stamp (any primary key) is excluded.
    std::string next_stamp = *after_versionstamp;
    next_stamp.resize(kVersionstampBytes, '\x00');
    for (int i = static_cast<int>(kVersionstampBytes) - 1; i >= 0; --i) {
      if (static_cast<unsigned char>(next_stamp[i]) != 0xFF) {
        next_stamp[i] = static_cast<char>(next_stamp[i] + 1);
        break;
      }
      next_stamp[i] = '\x00';
    }
    range.begin = prefix + next_stamp;
  }
  fdb::RangeOptions opts;
  opts.limit = options.limit;
  opts.reverse = options.reverse;
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> kvs,
                         txn_->GetRange(range, opts, options.snapshot));
  std::vector<VersionIndexEntry> out;
  out.reserve(kvs.size());
  for (const fdb::KeyValue& kv : kvs) {
    if (kv.key.size() < prefix.size() + kVersionstampBytes) {
      return Status::Internal("corrupt version index entry");
    }
    VersionIndexEntry entry;
    entry.versionstamp = kv.key.substr(prefix.size(), kVersionstampBytes);
    QUICK_ASSIGN_OR_RETURN(
        entry.primary_key,
        tup::Tuple::Decode(std::string_view(kv.key).substr(
            prefix.size() + kVersionstampBytes)));
    out.push_back(std::move(entry));
  }
  return out;
}

Result<std::optional<std::string>> RecordStore::GetRecordVersion(
    const std::string& index_name, const std::string& type,
    const tup::Tuple& pk) {
  tup::Tuple full_pk = tup::Tuple().AddString(type);
  full_pk.Concat(pk);
  return txn_->Get(VersionHeaderKey(index_name, full_pk));
}

Result<std::vector<Record>> RecordStore::Execute(const Query& query) {
  IndexScanOptions options;
  options.reverse = query.reverse;
  // The residual predicate may reject entries, so the index scan cannot be
  // limited when one is present.
  options.limit = query.predicate ? 0 : query.limit;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<IndexEntry> entries,
      ScanIndexRange(query.index_name, query.begin, query.end, options));
  std::vector<Record> out;
  for (const IndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(std::optional<std::string> bytes,
                           txn_->Get(RecordKey(entry.primary_key)));
    if (!bytes.has_value()) {
      return Status::Internal("index entry without record");
    }
    QUICK_ASSIGN_OR_RETURN(Record record, Record::Deserialize(*bytes));
    if (query.predicate && !query.predicate(record)) continue;
    out.push_back(std::move(record));
    if (query.limit > 0 && static_cast<int>(out.size()) >= query.limit) break;
  }
  return out;
}

Result<bool> RecordStore::IsEmpty() {
  fdb::RangeOptions opts;
  opts.limit = 1;
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> kvs,
                         txn_->GetRange(records_.Range(), opts));
  return kvs.empty();
}

Status RecordStore::DeleteAllRecords() {
  txn_->ClearRange(subspace_.Range());
  return Status::OK();
}

Result<int64_t> RecordStore::CountRecords() {
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> kvs,
                         txn_->GetRange(records_.Range()));
  return static_cast<int64_t>(kvs.size());
}

}  // namespace quick::rl
