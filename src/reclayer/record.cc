#include "reclayer/record.h"

#include <sstream>

namespace quick::rl {

Record& Record::SetInt(const std::string& field, int64_t v) {
  fields_[field] = v;
  return *this;
}

Record& Record::SetString(const std::string& field, std::string v) {
  fields_[field] = tup::Element(std::move(v));
  return *this;
}

Record& Record::SetDouble(const std::string& field, double v) {
  fields_[field] = v;
  return *this;
}

Record& Record::SetBool(const std::string& field, bool v) {
  fields_[field] = v;
  return *this;
}

Record& Record::SetBytes(const std::string& field, std::string v) {
  fields_[field] = tup::Bytes{std::move(v)};
  return *this;
}

Record& Record::ClearField(const std::string& field) {
  fields_.erase(field);
  return *this;
}

const tup::Element* Record::Find(const std::string& field) const {
  auto it = fields_.find(field);
  return it == fields_.end() ? nullptr : &it->second;
}

tup::Element Record::ElementOrNull(const std::string& field) const {
  const tup::Element* e = Find(field);
  return e == nullptr ? tup::Element(tup::Null{}) : *e;
}

Result<int64_t> Record::GetInt(const std::string& field) const {
  const tup::Element* e = Find(field);
  if (e == nullptr) return Status::NotFound("field " + field);
  if (const auto* v = std::get_if<int64_t>(e)) return *v;
  return Status::InvalidArgument("field " + field + " is not an int");
}

Result<std::string> Record::GetString(const std::string& field) const {
  const tup::Element* e = Find(field);
  if (e == nullptr) return Status::NotFound("field " + field);
  if (const auto* v = std::get_if<std::string>(e)) return *v;
  return Status::InvalidArgument("field " + field + " is not a string");
}

Result<double> Record::GetDouble(const std::string& field) const {
  const tup::Element* e = Find(field);
  if (e == nullptr) return Status::NotFound("field " + field);
  if (const auto* v = std::get_if<double>(e)) return *v;
  return Status::InvalidArgument("field " + field + " is not a double");
}

Result<bool> Record::GetBool(const std::string& field) const {
  const tup::Element* e = Find(field);
  if (e == nullptr) return Status::NotFound("field " + field);
  if (const auto* v = std::get_if<bool>(e)) return *v;
  return Status::InvalidArgument("field " + field + " is not a bool");
}

Result<std::string> Record::GetBytes(const std::string& field) const {
  const tup::Element* e = Find(field);
  if (e == nullptr) return Status::NotFound("field " + field);
  if (const auto* v = std::get_if<tup::Bytes>(e)) return v->data;
  return Status::InvalidArgument("field " + field + " is not bytes");
}

namespace {

bool ElementMatchesType(const tup::Element& e, FieldType type) {
  switch (type) {
    case FieldType::kInt64:
      return std::holds_alternative<int64_t>(e);
    case FieldType::kString:
      return std::holds_alternative<std::string>(e);
    case FieldType::kDouble:
      return std::holds_alternative<double>(e);
    case FieldType::kBool:
      return std::holds_alternative<bool>(e);
    case FieldType::kBytes:
      return std::holds_alternative<tup::Bytes>(e);
  }
  return false;
}

}  // namespace

Status Record::Validate(const RecordTypeDef& type_def) const {
  if (type_ != type_def.name) {
    return Status::InvalidArgument("record type " + type_ +
                                   " does not match schema " + type_def.name);
  }
  for (const auto& [name, element] : fields_) {
    const FieldDef* def = type_def.FindField(name);
    if (def == nullptr) {
      return Status::InvalidArgument("unknown field " + name + " on " +
                                     type_);
    }
    if (!ElementMatchesType(element, def->type)) {
      return Status::InvalidArgument("field " + name + " has wrong type");
    }
  }
  for (const std::string& pk : type_def.primary_key_fields) {
    if (!HasField(pk)) {
      return Status::InvalidArgument("missing primary key field " + pk);
    }
  }
  return Status::OK();
}

Result<tup::Tuple> Record::PrimaryKey(const RecordTypeDef& type_def) const {
  tup::Tuple pk;
  pk.AddString(type_);
  for (const std::string& field : type_def.primary_key_fields) {
    const tup::Element* e = Find(field);
    if (e == nullptr) {
      return Status::InvalidArgument("missing primary key field " + field);
    }
    pk.Add(*e);
  }
  return pk;
}

std::string Record::Serialize() const {
  // Canonical layout: (type, field_name_1, value_1, field_name_2, ...),
  // names in sorted order (std::map iteration order).
  tup::Tuple t;
  t.AddString(type_);
  for (const auto& [name, element] : fields_) {
    t.AddString(name);
    t.Add(element);
  }
  return t.Encode();
}

Result<Record> Record::Deserialize(std::string_view data) {
  QUICK_ASSIGN_OR_RETURN(tup::Tuple t, tup::Tuple::Decode(data));
  if (t.empty()) return Status::InvalidArgument("empty record encoding");
  if (t.size() % 2 != 1) {
    return Status::InvalidArgument("malformed record encoding");
  }
  QUICK_ASSIGN_OR_RETURN(std::string type, t.GetString(0));
  Record rec(std::move(type));
  for (size_t i = 1; i + 1 < t.size(); i += 2) {
    QUICK_ASSIGN_OR_RETURN(std::string name, t.GetString(i));
    rec.fields_[std::move(name)] = t.at(i + 1);
  }
  return rec;
}

std::string Record::ToString() const {
  std::ostringstream os;
  os << type_ << "{";
  bool first = true;
  for (const auto& [name, element] : fields_) {
    if (!first) os << ", ";
    first = false;
    tup::Tuple t;
    t.Add(element);
    std::string rendered = t.ToString();  // "(value)"
    os << name << "=" << rendered.substr(1, rendered.size() - 2);
  }
  os << "}";
  return os.str();
}

bool Record::operator==(const Record& other) const {
  if (type_ != other.type_) return false;
  if (fields_.size() != other.fields_.size()) return false;
  for (const auto& [name, element] : fields_) {
    const tup::Element* oe = other.Find(name);
    if (oe == nullptr) return false;
    if (tup::CompareElements(element, *oe) != std::strong_ordering::equal) {
      return false;
    }
  }
  return true;
}

}  // namespace quick::rl
