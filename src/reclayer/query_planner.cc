#include "reclayer/query_planner.h"

#include <algorithm>
#include <sstream>

namespace quick::rl {

std::string QueryPlan::Explain() const {
  std::ostringstream os;
  if (kind == Kind::kFullScan) {
    os << "FullScan";
  } else {
    os << "IndexScan(" << index_name << ") bounds=["
       << (begin.has_value() ? begin->ToString() : "-inf")
       << (begin_inclusive ? "" : " excl") << ", "
       << (end.has_value() ? end->ToString() : "+inf")
       << (end_inclusive ? " incl" : "") << "]";
  }
  os << " residual=" << residual.size();
  return os.str();
}

Result<QueryPlan> QueryPlanner::Plan(const PlannedQuery& query) const {
  const RecordTypeDef* type = metadata_->FindRecordType(query.record_type);
  if (type == nullptr) {
    return Status::InvalidArgument("unknown record type " + query.record_type);
  }
  for (const FieldPredicate& p : query.predicates) {
    if (type->FindField(p.field) == nullptr) {
      return Status::InvalidArgument("unknown field " + p.field + " on " +
                                     query.record_type);
    }
  }

  QueryPlan best;  // defaults to full scan; every predicate residual
  best.residual = query.predicates;

  for (const IndexDef& index : metadata_->indexes()) {
    if (index.kind != IndexKind::kValue) continue;
    if (!index.Covers(query.record_type)) continue;

    // Greedily absorb predicates along the index's field order: equality
    // predicates extend the bound prefix; the first range predicate on the
    // next field closes it.
    tup::Tuple eq_prefix;
    std::vector<bool> used(query.predicates.size(), false);
    int bound = 0;
    const FieldPredicate* range_pred = nullptr;

    for (const std::string& field : index.fields) {
      // Prefer an equality on this field.
      int eq_at = -1;
      int range_at = -1;
      for (size_t i = 0; i < query.predicates.size(); ++i) {
        if (used[i] || query.predicates[i].field != field) continue;
        if (query.predicates[i].op == FieldPredicate::Op::kEquals) {
          eq_at = static_cast<int>(i);
          break;
        }
        if (range_at < 0) range_at = static_cast<int>(i);
      }
      if (eq_at >= 0) {
        used[eq_at] = true;
        eq_prefix.Add(query.predicates[eq_at].value);
        ++bound;
        continue;
      }
      if (range_at >= 0) {
        used[range_at] = true;
        range_pred = &query.predicates[range_at];
        ++bound;
      }
      break;  // prefix broken (or closed by a range)
    }

    if (bound <= best.bound_predicates &&
        !(best.kind == QueryPlan::Kind::kFullScan && bound > 0)) {
      continue;
    }

    QueryPlan plan;
    plan.kind = QueryPlan::Kind::kIndexScan;
    plan.index_name = index.name;
    plan.bound_predicates = bound;
    if (range_pred == nullptr) {
      if (!eq_prefix.empty()) {
        plan.begin = eq_prefix;
        plan.end = eq_prefix;
        plan.end_inclusive = true;  // prefix range: every extension matches
      }
    } else {
      tup::Tuple lower = eq_prefix;
      tup::Tuple upper = eq_prefix;
      switch (range_pred->op) {
        case FieldPredicate::Op::kLess:
          plan.begin = eq_prefix.empty() ? std::nullopt
                                         : std::optional<tup::Tuple>(eq_prefix);
          upper.Add(range_pred->value);
          plan.end = upper;
          plan.end_inclusive = false;
          break;
        case FieldPredicate::Op::kLessOrEqual:
          plan.begin = eq_prefix.empty() ? std::nullopt
                                         : std::optional<tup::Tuple>(eq_prefix);
          upper.Add(range_pred->value);
          plan.end = upper;
          plan.end_inclusive = true;
          break;
        case FieldPredicate::Op::kGreater:
          lower.Add(range_pred->value);
          plan.begin = lower;
          plan.begin_inclusive = false;
          if (!eq_prefix.empty()) {
            plan.end = eq_prefix;
            plan.end_inclusive = true;
          }
          break;
        case FieldPredicate::Op::kGreaterOrEqual:
          lower.Add(range_pred->value);
          plan.begin = lower;
          plan.begin_inclusive = true;
          if (!eq_prefix.empty()) {
            plan.end = eq_prefix;
            plan.end_inclusive = true;
          }
          break;
        case FieldPredicate::Op::kEquals:
          break;  // unreachable
      }
    }
    for (size_t i = 0; i < query.predicates.size(); ++i) {
      if (!used[i]) plan.residual.push_back(query.predicates[i]);
    }
    best = std::move(plan);
  }
  return best;
}

bool EvaluatePredicate(const Record& record, const FieldPredicate& predicate) {
  const std::strong_ordering cmp = tup::CompareElements(
      record.ElementOrNull(predicate.field), predicate.value);
  switch (predicate.op) {
    case FieldPredicate::Op::kEquals:
      return cmp == std::strong_ordering::equal;
    case FieldPredicate::Op::kLess:
      return cmp == std::strong_ordering::less;
    case FieldPredicate::Op::kLessOrEqual:
      return cmp != std::strong_ordering::greater;
    case FieldPredicate::Op::kGreater:
      return cmp == std::strong_ordering::greater;
    case FieldPredicate::Op::kGreaterOrEqual:
      return cmp != std::strong_ordering::less;
  }
  return false;
}

Result<std::vector<Record>> ExecutePlanned(RecordStore* store,
                                           const QueryPlanner& planner,
                                           const PlannedQuery& query) {
  QUICK_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(query));
  std::vector<Record> candidates;
  if (plan.kind == QueryPlan::Kind::kFullScan) {
    QUICK_ASSIGN_OR_RETURN(candidates, store->ScanRecords());
  } else {
    IndexBounds bounds;
    bounds.begin = plan.begin;
    bounds.begin_inclusive = plan.begin_inclusive;
    bounds.end = plan.end;
    bounds.end_inclusive = plan.end_inclusive;
    QUICK_ASSIGN_OR_RETURN(std::vector<IndexEntry> entries,
                           store->ScanIndexBounds(plan.index_name, bounds));
    for (const IndexEntry& entry : entries) {
      QUICK_ASSIGN_OR_RETURN(std::optional<Record> rec,
                             store->LoadByFullPrimaryKey(entry.primary_key));
      if (!rec.has_value()) {
        return Status::Internal("index entry without record");
      }
      candidates.push_back(*std::move(rec));
    }
  }

  std::vector<Record> out;
  for (Record& rec : candidates) {
    if (rec.type() != query.record_type) continue;
    bool keep = true;
    for (const FieldPredicate& p : plan.residual) {
      if (!EvaluatePredicate(rec, p)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    out.push_back(std::move(rec));
    if (query.limit > 0 && static_cast<int>(out.size()) >= query.limit) break;
  }
  return out;
}

}  // namespace quick::rl
