#ifndef QUICK_RECLAYER_ONLINE_INDEX_BUILDER_H_
#define QUICK_RECLAYER_ONLINE_INDEX_BUILDER_H_

#include <string>

#include "fdb/database.h"
#include "reclayer/record_store.h"

namespace quick::rl {

/// Lifecycle state of an index within one record store. Indexes absent
/// from the state table are readable (the common, fully-built case).
enum class IndexState : int64_t {
  kReadable = 0,
  /// Maintained by writes but not yet backfilled: scans are rejected.
  kWriteOnly = 1,
};

/// Backfills a newly added index over a store's existing records — the
/// Record Layer's online indexer, and the very job the paper's first
/// motivating example defers to QuiCK ("Create or drop indexes ... when an
/// app's schema is updated", §1; "failing to build a FoundationDB Record
/// Layer index may cause client requests requiring the index to fail",
/// §2).
///
/// Protocol:
///   1. Add the IndexDef to the store's metadata and call MarkWriteOnly —
///      from now on every SaveRecord/DeleteRecord maintains the index, but
///      scans are rejected.
///   2. Call Build: scans existing records in batches (each batch its own
///      transaction with a resume cursor), writing the missing entries.
///      Concurrent record updates are safe: a batch strongly reads the
///      records it indexes, so a racing update aborts the batch, which
///      retries.
///   3. Build finishes by marking the index readable.
///
/// Build is resumable and idempotent — exactly what at-least-once QuiCK
/// work items need (§2).
class OnlineIndexBuilder {
 public:
  struct Options {
    int batch_size = 64;
  };

  OnlineIndexBuilder(fdb::Database* db, tup::Subspace store_subspace,
                     const RecordMetadata* metadata, std::string index_name);
  OnlineIndexBuilder(fdb::Database* db, tup::Subspace store_subspace,
                     const RecordMetadata* metadata, std::string index_name,
                     Options options);

  /// Step 1: declares the index write-only.
  Status MarkWriteOnly();

  /// Steps 2+3: backfills all existing records and marks the index
  /// readable. Safe to re-run after interruption.
  Status Build();

  /// Reads the current state of any index in a store.
  static Result<IndexState> GetIndexState(fdb::Transaction* txn,
                                          const tup::Subspace& store_subspace,
                                          const std::string& index_name);

 private:
  Status SetState(IndexState state);

  fdb::Database* db_;
  tup::Subspace store_subspace_;
  const RecordMetadata* metadata_;
  std::string index_name_;
  Options options_;
};

}  // namespace quick::rl

#endif  // QUICK_RECLAYER_ONLINE_INDEX_BUILDER_H_
