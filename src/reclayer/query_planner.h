#ifndef QUICK_RECLAYER_QUERY_PLANNER_H_
#define QUICK_RECLAYER_QUERY_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "reclayer/record_store.h"

namespace quick::rl {

/// One field comparison; a PlannedQuery ANDs its predicates. Values compare
/// with the tuple layer's cross-type total order.
struct FieldPredicate {
  enum class Op {
    kEquals,
    kLess,
    kLessOrEqual,
    kGreater,
    kGreaterOrEqual,
  };
  std::string field;
  Op op = Op::kEquals;
  tup::Element value;
};

/// A declarative query over one record type.
struct PlannedQuery {
  std::string record_type;
  std::vector<FieldPredicate> predicates;
  int limit = 0;
};

/// The access path the planner chose: a value-index scan with tuple bounds
/// (preferred) or a full record scan, plus the predicates that must still
/// be evaluated against each record ("residual filter").
struct QueryPlan {
  enum class Kind { kIndexScan, kFullScan };
  Kind kind = Kind::kFullScan;
  std::string index_name;
  std::optional<tup::Tuple> begin;
  bool begin_inclusive = true;
  std::optional<tup::Tuple> end;
  bool end_inclusive = false;
  /// Number of predicates the chosen index absorbs (planner score).
  int bound_predicates = 0;
  std::vector<FieldPredicate> residual;

  /// e.g. "IndexScan(by_age) bounds=[(30), (40)] residual=1" — for tests
  /// and EXPLAIN-style debugging.
  std::string Explain() const;
};

/// Chooses an access path for a PlannedQuery against the store's metadata:
/// the value index that absorbs the longest prefix of equality predicates
/// plus at most one range predicate on the next field wins; everything else
/// becomes a residual filter. This is the (simplified) index-selection core
/// of the Record Layer's query planner the paper lists among the features
/// QuiCK builds on (§4: "a rich set of query and indexing facilities").
class QueryPlanner {
 public:
  explicit QueryPlanner(const RecordMetadata* metadata)
      : metadata_(metadata) {}

  /// Fails on unknown record types or fields.
  Result<QueryPlan> Plan(const PlannedQuery& query) const;

 private:
  const RecordMetadata* metadata_;
};

/// Evaluates `predicate` against a record (absent fields compare as Null).
bool EvaluatePredicate(const Record& record, const FieldPredicate& predicate);

/// Plans and runs a query against `store`. Results are in index order for
/// index plans, primary-key order for full scans.
Result<std::vector<Record>> ExecutePlanned(RecordStore* store,
                                           const QueryPlanner& planner,
                                           const PlannedQuery& query);

}  // namespace quick::rl

#endif  // QUICK_RECLAYER_QUERY_PLANNER_H_
