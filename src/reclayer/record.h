#ifndef QUICK_RECLAYER_RECORD_H_
#define QUICK_RECLAYER_RECORD_H_

#include <map>
#include <string>

#include "common/result.h"
#include "reclayer/metadata.h"
#include "tuple/tuple.h"

namespace quick::rl {

/// One record instance: a typed bag of named field values. Serialization is
/// tuple-based (field names sorted, so the encoding is canonical).
class Record {
 public:
  Record() = default;
  explicit Record(std::string type) : type_(std::move(type)) {}

  const std::string& type() const { return type_; }
  void set_type(std::string type) { type_ = std::move(type); }

  Record& SetInt(const std::string& field, int64_t v);
  Record& SetString(const std::string& field, std::string v);
  Record& SetDouble(const std::string& field, double v);
  Record& SetBool(const std::string& field, bool v);
  Record& SetBytes(const std::string& field, std::string v);
  Record& ClearField(const std::string& field);

  bool HasField(const std::string& field) const {
    return fields_.count(field) > 0;
  }

  Result<int64_t> GetInt(const std::string& field) const;
  Result<std::string> GetString(const std::string& field) const;
  Result<double> GetDouble(const std::string& field) const;
  Result<bool> GetBool(const std::string& field) const;
  Result<std::string> GetBytes(const std::string& field) const;

  /// Raw element access (null when absent).
  const tup::Element* Find(const std::string& field) const;

  /// Field value as a tuple element for index keys; Null when absent.
  tup::Element ElementOrNull(const std::string& field) const;

  const std::map<std::string, tup::Element>& fields() const { return fields_; }

  /// Verifies every present field matches the type's schema and all primary
  /// key fields are present.
  Status Validate(const RecordTypeDef& type_def) const;

  /// The record's primary key per `type_def`: (type name, pk fields...).
  Result<tup::Tuple> PrimaryKey(const RecordTypeDef& type_def) const;

  std::string Serialize() const;
  static Result<Record> Deserialize(std::string_view data);

  std::string ToString() const;

  bool operator==(const Record& other) const;

 private:
  std::string type_;
  std::map<std::string, tup::Element> fields_;
};

}  // namespace quick::rl

#endif  // QUICK_RECLAYER_RECORD_H_
