#ifndef QUICK_RECLAYER_RECORD_STORE_H_
#define QUICK_RECLAYER_RECORD_STORE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fdb/transaction.h"
#include "reclayer/metadata.h"
#include "reclayer/record.h"
#include "tuple/subspace.h"

namespace quick::rl {

/// One entry of a value index: the indexed field values and the primary key
/// of the record they belong to.
struct IndexEntry {
  tup::Tuple indexed_values;
  tup::Tuple primary_key;
};

/// A record together with its full primary key (type-name prefix
/// included) — what paged scans return so callers can resume.
struct StoredRecord {
  tup::Tuple primary_key;
  Record record;
};

/// One entry of a version index: the 10-byte commit versionstamp of the
/// record's last write and its primary key, in commit order.
struct VersionIndexEntry {
  std::string versionstamp;
  tup::Tuple primary_key;
};

/// Tuple bounds for a value-index scan with per-end inclusivity. An
/// inclusive bound covers every entry extending the bound tuple (the
/// encoding guarantees primary-key continuations sort before 0xFF).
struct IndexBounds {
  std::optional<tup::Tuple> begin;
  bool begin_inclusive = true;
  std::optional<tup::Tuple> end;
  bool end_inclusive = false;
};

/// Options for index scans.
struct IndexScanOptions {
  int limit = 0;
  bool reverse = false;
  /// Snapshot scans add no read conflict — QuiCK's Scanner peeks the
  /// vesting index this way so peeks never abort enqueues (§6).
  bool snapshot = false;
};

/// A simple query: scan a value index within [begin, end) tuple bounds and
/// filter residually. This models the slice of the Record Layer's query
/// machinery that QuiCK exercises.
struct Query {
  std::string index_name;
  /// Inclusive lower bound on the indexed values (prefix allowed).
  std::optional<tup::Tuple> begin;
  /// Exclusive upper bound on the indexed values.
  std::optional<tup::Tuple> end;
  int limit = 0;
  bool reverse = false;
  std::function<bool(const Record&)> predicate;  // optional residual filter
};

/// Record-oriented view over a subspace of one FoundationDB cluster,
/// operating entirely within a caller-supplied transaction (the Record
/// Layer idiom: a RecordStore is cheap, stateless, and opened per
/// transaction). Secondary indexes are maintained transactionally with
/// every save/delete; count indexes use atomic adds and therefore never
/// conflict.
class RecordStore {
 public:
  RecordStore(fdb::Transaction* txn, tup::Subspace subspace,
              const RecordMetadata* metadata);

  /// Inserts or replaces by primary key, updating every covering index.
  Status SaveRecord(const Record& record);

  /// `pk` excludes the type name (it is prefixed internally). `snapshot`
  /// loads add no read conflict — observational scans (QuiCK's peeks) use
  /// them so looking at an item never aborts its writers; any path that
  /// acts on the record must load strongly (or SaveRecord's own
  /// previous-image read supplies the conflict).
  Result<std::optional<Record>> LoadRecord(const std::string& type,
                                           const tup::Tuple& pk,
                                           bool snapshot = false);

  /// True when a record was deleted.
  Result<bool> DeleteRecord(const std::string& type, const tup::Tuple& pk);

  /// All records in primary-key order (limit 0 = unlimited).
  Result<std::vector<Record>> ScanRecords(int limit = 0);

  /// A page of records strictly after `after_primary_key` (nullopt starts
  /// from the beginning) — the online index builder's resumable scan.
  Result<std::vector<StoredRecord>> ScanRecordsPage(
      const std::optional<tup::Tuple>& after_primary_key, int limit);

  /// Writes the value-index entry `index_name` would hold for `record`
  /// (online index backfill; no-op semantics are the caller's concern).
  Status BackfillIndexEntry(const std::string& index_name,
                            const Record& record);

  /// Key of the per-store index-state record (IndexState as LE64; absent
  /// means readable). Shared with OnlineIndexBuilder.
  std::string IndexStateKey(const std::string& index_name) const {
    return states_.Pack(tup::Tuple().AddString(index_name));
  }

  /// Entries of a value index whose indexed values start with `prefix`
  /// (empty prefix scans the whole index), ordered by indexed value.
  Result<std::vector<IndexEntry>> ScanIndex(const std::string& index_name,
                                            const tup::Tuple& prefix,
                                            const IndexScanOptions& options = {});

  /// Index scan between tuple bounds: [begin, end) on indexed values.
  Result<std::vector<IndexEntry>> ScanIndexRange(
      const std::string& index_name, const std::optional<tup::Tuple>& begin,
      const std::optional<tup::Tuple>& end, const IndexScanOptions& options = {});

  /// Index scan with per-end inclusivity (the query planner's access path).
  Result<std::vector<IndexEntry>> ScanIndexBounds(
      const std::string& index_name, const IndexBounds& bounds,
      const IndexScanOptions& options = {});

  /// Loads a record by its full primary key (type-name prefix included),
  /// as index entries carry it. `snapshot` as in LoadRecord.
  Result<std::optional<Record>> LoadByFullPrimaryKey(const tup::Tuple& full_pk,
                                                     bool snapshot = false);

  /// Value of a count index for a grouping tuple. `snapshot` avoids a read
  /// conflict (monitoring reads, §6 "Isolation level").
  Result<int64_t> GetCount(const std::string& index_name,
                           const tup::Tuple& group, bool snapshot = true);

  /// Entries of a version index in commit order, optionally only those
  /// committed strictly after `after_versionstamp` — the "what changed
  /// since my last sync token" scan CloudKit sync performs.
  Result<std::vector<VersionIndexEntry>> ScanVersionIndex(
      const std::string& index_name,
      const std::optional<std::string>& after_versionstamp = std::nullopt,
      const IndexScanOptions& options = {});

  /// The versionstamp `index_name` currently holds for the record (its
  /// last write, or first write for sticky indexes); nullopt when absent.
  Result<std::optional<std::string>> GetRecordVersion(
      const std::string& index_name, const std::string& type,
      const tup::Tuple& pk);

  /// Runs a query: index scan + record load + residual predicate.
  Result<std::vector<Record>> Execute(const Query& query);

  /// Exact storage key of one value-index entry. QuiCK's enqueue protocol
  /// point-reads this key to test pointer existence and declares write
  /// conflicts on it for external stores (§6.1 of the paper).
  std::string ValueIndexEntryKey(const std::string& index_name,
                                 const tup::Tuple& values,
                                 const tup::Tuple& primary_key) const {
    tup::Tuple key = tup::Tuple().AddString(index_name);
    key.Concat(values);
    key.Concat(primary_key);
    return indexes_.Pack(key);
  }

  /// True when the store holds no records. Performs a strong (conflicting)
  /// read of one key, which is what makes QuiCK's pointer GC safe (§6
  /// "Correctness": the emptiness check conflicts with concurrent inserts).
  Result<bool> IsEmpty();

  /// Removes every record, index entry, and counter in the store.
  Status DeleteAllRecords();

  /// Number of records via full scan (tests/diagnostics).
  Result<int64_t> CountRecords();

  const tup::Subspace& subspace() const { return subspace_; }

 private:
  /// Key of the record with primary key `pk` (pk includes the type prefix).
  std::string RecordKey(const tup::Tuple& pk) const;

  Status RemoveIndexEntries(const Record& record, const tup::Tuple& pk);
  tup::Tuple IndexedValues(const IndexDef& index, const Record& record) const;

  /// Byte prefix of a version index's entries (stamp + pk follow raw).
  std::string VersionIndexPrefix(const std::string& index_name) const {
    return indexes_.Pack(tup::Tuple().AddString(index_name));
  }
  std::string VersionHeaderKey(const std::string& index_name,
                               const tup::Tuple& pk) const {
    tup::Tuple key = tup::Tuple().AddString(index_name);
    key.Concat(pk);
    return headers_.Pack(key);
  }
  /// Maintains every covering version index for a record write/delete:
  /// clears the entry at the old stamp (from the header) and, unless
  /// `deleting`, writes a fresh versionstamped entry and header.
  Status MaintainVersionIndexes(const std::string& record_type,
                                const tup::Tuple& pk, bool deleting);
  Result<std::vector<IndexEntry>> ScanIndexRangeImplByKeys(
      const std::string& index_name, const KeyRange& range,
      const IndexScanOptions& options);

  fdb::Transaction* txn_;
  tup::Subspace subspace_;
  tup::Subspace records_;
  tup::Subspace indexes_;
  tup::Subspace headers_;  // per-record last-write versionstamps
  tup::Subspace states_;   // per-index lifecycle state (online builds)
  const RecordMetadata* metadata_;

  /// Rejects scans of write-only (still building) indexes. Snapshot read:
  /// never adds conflicts, preserving QuiCK's contention design.
  Status CheckIndexReadable(const std::string& index_name);
};

}  // namespace quick::rl

#endif  // QUICK_RECLAYER_RECORD_STORE_H_
