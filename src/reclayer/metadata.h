#ifndef QUICK_RECLAYER_METADATA_H_
#define QUICK_RECLAYER_METADATA_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace quick::rl {

/// Scalar field types a record may carry (the subset of the FoundationDB
/// Record Layer's protobuf-backed model that QuiCK needs).
enum class FieldType { kInt64, kString, kDouble, kBool, kBytes };

struct FieldDef {
  std::string name;
  FieldType type;
};

/// A record type: named fields plus the ordered list of fields forming the
/// primary key. Primary keys are scoped per type; the store prefixes them
/// with the type name so different types never collide.
struct RecordTypeDef {
  std::string name;
  std::vector<FieldDef> fields;
  std::vector<std::string> primary_key_fields;

  const FieldDef* FindField(const std::string& field_name) const {
    for (const FieldDef& f : fields) {
      if (f.name == field_name) return &f;
    }
    return nullptr;
  }
};

enum class IndexKind {
  /// Key per record: (indexed field values..., primary key) — ordered scans.
  kValue,
  /// One counter per distinct grouping-field value, maintained with atomic
  /// adds so it never causes conflicts (§4: "atomic operations to implement
  /// efficient counters (exposed as a Record Layer count index)").
  kCount,
  /// One entry per record ordered by the commit version of its last write,
  /// maintained with versionstamped keys — the Record Layer VERSION index
  /// that CloudKit sync is built on (§5 cites it as the commit-timestamp
  /// ordering mechanism). Takes no fields.
  kVersion,
};

struct IndexDef {
  std::string name;
  IndexKind kind = IndexKind::kValue;
  /// Record types this index covers; empty means every type that has all
  /// the indexed fields.
  std::vector<std::string> record_types;
  /// Indexed fields for kValue (ordering fields); grouping fields for
  /// kCount (may be empty for a store-wide count).
  std::vector<std::string> fields;
  /// kVersion only: when true the entry keeps the stamp of the record's
  /// FIRST write (insertion/arrival order — strict-FIFO queues, §5's
  /// commit-timestamp ordering); when false it tracks the last write
  /// (sync-style change feeds).
  bool sticky_version = false;

  bool Covers(const std::string& record_type) const {
    if (record_types.empty()) return true;
    for (const std::string& t : record_types) {
      if (t == record_type) return true;
    }
    return false;
  }
};

/// Schema for one record store: record types and index definitions, with
/// a version for evolution (the Record Layer persists the version in each
/// store's header and re-validates on open).
class RecordMetadata {
 public:
  explicit RecordMetadata(int version = 1) : version_(version) {}

  /// Fails on duplicate type name, empty/unknown primary key fields.
  Status AddRecordType(RecordTypeDef type);

  /// Fails on duplicate index name, unknown fields in covered types, or a
  /// value index with no fields.
  Status AddIndex(IndexDef index);

  const RecordTypeDef* FindRecordType(const std::string& name) const;
  const IndexDef* FindIndex(const std::string& name) const;

  const std::vector<RecordTypeDef>& record_types() const {
    return record_types_;
  }
  const std::vector<IndexDef>& indexes() const { return indexes_; }
  int version() const { return version_; }

 private:
  int version_;
  std::vector<RecordTypeDef> record_types_;
  std::vector<IndexDef> indexes_;
};

}  // namespace quick::rl

#endif  // QUICK_RECLAYER_METADATA_H_
