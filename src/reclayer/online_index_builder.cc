#include "reclayer/online_index_builder.h"

#include "common/bytes.h"
#include "fdb/retry.h"

namespace quick::rl {

namespace {
// Resume cursor for an interrupted build, stored next to the state record.
std::string CursorKey(const RecordStore& store, const std::string& index) {
  return store.IndexStateKey(index) + "\x00cursor";
}
}  // namespace

OnlineIndexBuilder::OnlineIndexBuilder(fdb::Database* db,
                                       tup::Subspace store_subspace,
                                       const RecordMetadata* metadata,
                                       std::string index_name)
    : OnlineIndexBuilder(db, std::move(store_subspace), metadata,
                         std::move(index_name), Options{}) {}

OnlineIndexBuilder::OnlineIndexBuilder(fdb::Database* db,
                                       tup::Subspace store_subspace,
                                       const RecordMetadata* metadata,
                                       std::string index_name, Options options)
    : db_(db),
      store_subspace_(std::move(store_subspace)),
      metadata_(metadata),
      index_name_(std::move(index_name)),
      options_(options) {}

Status OnlineIndexBuilder::SetState(IndexState state) {
  return fdb::RunTransaction(db_, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, store_subspace_, metadata_);
    if (state == IndexState::kReadable) {
      txn.Clear(store.IndexStateKey(index_name_));
      txn.Clear(CursorKey(store, index_name_));
    } else {
      txn.Set(store.IndexStateKey(index_name_),
              EncodeLittleEndian64(static_cast<uint64_t>(state)));
    }
    return Status::OK();
  });
}

Status OnlineIndexBuilder::MarkWriteOnly() {
  const IndexDef* index = metadata_->FindIndex(index_name_);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index " + index_name_);
  }
  if (index->kind != IndexKind::kValue) {
    return Status::InvalidArgument(
        "online build supports value indexes only");
  }
  return SetState(IndexState::kWriteOnly);
}

Status OnlineIndexBuilder::Build() {
  const IndexDef* index = metadata_->FindIndex(index_name_);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index " + index_name_);
  }
  if (index->kind != IndexKind::kValue) {
    return Status::InvalidArgument(
        "online build supports value indexes only");
  }

  // Batched backfill with a persisted resume cursor. Every batch is its
  // own transaction: it strongly reads a page of records (so concurrent
  // updates to them abort and retry the batch) and writes their entries.
  while (true) {
    bool done = false;
    Status st = fdb::RunTransaction(db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, store_subspace_, metadata_);
      QUICK_ASSIGN_OR_RETURN(std::optional<std::string> cursor_bytes,
                             txn.Get(CursorKey(store, index_name_)));
      std::optional<tup::Tuple> cursor;
      if (cursor_bytes.has_value()) {
        QUICK_ASSIGN_OR_RETURN(tup::Tuple t,
                               tup::Tuple::Decode(*cursor_bytes));
        cursor = std::move(t);
      }
      QUICK_ASSIGN_OR_RETURN(std::vector<StoredRecord> page,
                             store.ScanRecordsPage(cursor,
                                                   options_.batch_size));
      for (const StoredRecord& row : page) {
        QUICK_RETURN_IF_ERROR(
            store.BackfillIndexEntry(index_name_, row.record));
      }
      if (page.empty() ||
          static_cast<int>(page.size()) < options_.batch_size) {
        done = true;
      }
      if (!page.empty()) {
        txn.Set(CursorKey(store, index_name_),
                page.back().primary_key.Encode());
      }
      return Status::OK();
    });
    QUICK_RETURN_IF_ERROR(st);
    if (done) break;
  }
  return SetState(IndexState::kReadable);
}

Result<IndexState> OnlineIndexBuilder::GetIndexState(
    fdb::Transaction* txn, const tup::Subspace& store_subspace,
    const std::string& index_name) {
  // Mirror RecordStore's key layout without requiring metadata.
  const std::string key =
      store_subspace.Sub("st").Pack(tup::Tuple().AddString(index_name));
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> state,
                         txn->Get(key, /*snapshot=*/true));
  if (!state.has_value()) return IndexState::kReadable;
  return static_cast<IndexState>(DecodeLittleEndian64(*state));
}

}  // namespace quick::rl
