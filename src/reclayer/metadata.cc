#include "reclayer/metadata.h"

namespace quick::rl {

Status RecordMetadata::AddRecordType(RecordTypeDef type) {
  if (type.name.empty()) {
    return Status::InvalidArgument("record type name must not be empty");
  }
  if (FindRecordType(type.name) != nullptr) {
    return Status::AlreadyExists("record type " + type.name);
  }
  if (type.primary_key_fields.empty()) {
    return Status::InvalidArgument("record type " + type.name +
                                   " needs a primary key");
  }
  for (const std::string& pk : type.primary_key_fields) {
    if (type.FindField(pk) == nullptr) {
      return Status::InvalidArgument("primary key field " + pk +
                                     " not defined on " + type.name);
    }
  }
  record_types_.push_back(std::move(type));
  return Status::OK();
}

Status RecordMetadata::AddIndex(IndexDef index) {
  if (index.name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  if (FindIndex(index.name) != nullptr) {
    return Status::AlreadyExists("index " + index.name);
  }
  if (index.kind == IndexKind::kValue && index.fields.empty()) {
    return Status::InvalidArgument("value index " + index.name +
                                   " needs at least one field");
  }
  if (index.kind == IndexKind::kVersion && !index.fields.empty()) {
    return Status::InvalidArgument("version index " + index.name +
                                   " takes no fields");
  }
  for (const std::string& type_name : index.record_types) {
    const RecordTypeDef* type = FindRecordType(type_name);
    if (type == nullptr) {
      return Status::InvalidArgument("index " + index.name +
                                     " covers unknown type " + type_name);
    }
    for (const std::string& field : index.fields) {
      if (type->FindField(field) == nullptr) {
        return Status::InvalidArgument("index " + index.name + " field " +
                                       field + " not defined on " + type_name);
      }
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const RecordTypeDef* RecordMetadata::FindRecordType(
    const std::string& name) const {
  for (const RecordTypeDef& t : record_types_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const IndexDef* RecordMetadata::FindIndex(const std::string& name) const {
  for (const IndexDef& i : indexes_) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

}  // namespace quick::rl
