#ifndef QUICK_WORKLOAD_ZIPF_H_
#define QUICK_WORKLOAD_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace quick::wl {

/// Zipf(s) sampler over ranks [0, n): P(rank k) ∝ 1 / (k+1)^s. Built once
/// (O(n) CDF precompute), sampled in O(log n) by binary search — cheap
/// enough for the million-tenant scale harness to draw per-item tenant
/// ids from a 100k+ universe (DESIGN.md §12). s = 0 degenerates to
/// uniform; s ≈ 1 is the classic web-traffic skew.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int64_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[static_cast<size_t>(k)] = total;
    }
    // Normalize so the last bucket is exactly 1.0 and NextDouble() < 1
    // can never fall past the end.
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;
  }

  /// One rank draw; rank 0 is the hottest tenant.
  int64_t Sample(Random* rng) const {
    const double u = rng->NextDouble();
    return static_cast<int64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace quick::wl

#endif  // QUICK_WORKLOAD_ZIPF_H_
