#ifndef QUICK_WORKLOAD_HARNESS_H_
#define QUICK_WORKLOAD_HARNESS_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fdb/replication.h"
#include "quick/alerts.h"
#include "quick/consumer.h"
#include "quick/quick.h"

namespace quick::wl {

/// Simulated-work job type registered by the harness.
inline constexpr const char* kSimJobType = "sim_work";

struct HarnessOptions {
  int num_clusters = 1;
  /// Injected FoundationDB latencies (zero by default; benches that model
  /// the paper's 2-DC deployment pass LatencyModel::PaperLike()).
  fdb::LatencyModel latency;
  /// Service time each simulated work item burns (the paper used ~50 ms;
  /// benches scale this down).
  int64_t work_millis = 2;
  /// GRV cache staleness for relaxed reads.
  int64_t grv_cache_staleness_millis = 50;
  /// Group-commit on the simulated clusters (benches toggle it to measure
  /// the commit-path batching win).
  bool enable_group_commit = true;
  /// Enqueue follow-up slack (QuickConfig::pointer_vesting_slack_millis),
  /// scaled down with the rest of the time base.
  int64_t pointer_vesting_slack_millis = 50;
  uint64_t seed = 42;
  std::string app = "bench";
  /// Top-level queue shards per cluster (QuickConfig::top_zone_shards);
  /// the scale harness sweeps this axis (DESIGN.md §12).
  int top_zone_shards = 1;
  /// Durable WAL + checkpointing on every cluster (cluster `i` logs to
  /// `<wal_dir>/cluster<i>`). Off by default — benches and tests that do
  /// not exercise durability keep today's purely in-memory clusters.
  bool enable_wal = false;
  std::string wal_dir;
  int64_t checkpoint_interval_bytes = 4 << 20;
  /// Per-cluster fault schedule (disk faults drive the crash-recovery
  /// suites; time windows compose as before).
  fdb::FaultPlan fault_plan;
  /// Warm standbys per cluster (DESIGN.md §10). Requires enable_wal;
  /// each cluster becomes a ReplicationGroup under `<wal_dir>/<name>`
  /// with the primary in region0 and standbys in region1..N. 0 keeps
  /// plain unreplicated clusters.
  int replicas_per_cluster = 0;
  /// Background log-shipping cadence; <= 0 disables the pump thread
  /// (tests then drive PumpReplication() by hand for determinism).
  int64_t replication_pump_interval_millis = 2;
  /// Receives replication alerts (divergence halts, promotions, refused
  /// promotions) on top of consumer alerts. Not owned; may be null.
  core::AlertSink* alert_sink = nullptr;
};

/// Owns a full QuiCK deployment — clusters, CloudKit, QuiCK, job registry
/// with a simulated-work handler, and the scanner-election cache — so
/// benchmarks and examples set up in one line.
class Harness {
 public:
  explicit Harness(const HarnessOptions& options);
  ~Harness();

  core::Quick* quick() { return quick_.get(); }
  ck::CloudKitService* cloudkit() { return ck_.get(); }
  /// The simulated clusters, exposed so benches can read commit-path
  /// stats (batch sizes, conflicts) off each Database.
  fdb::ClusterSet* clusters() { return clusters_.get(); }
  core::JobRegistry* registry() { return &registry_; }
  core::LeaseCache* election() { return &election_; }
  const std::vector<std::string>& cluster_names() const { return names_; }
  const HarnessOptions& options() const { return options_; }

  /// The logical database of simulated client `i` (one queue per client,
  /// matching the paper's "150K distinct clients and one CloudKit app").
  ck::DatabaseId ClientDb(int client) const {
    return ck::DatabaseId::Private(options_.app,
                                   "client" + std::to_string(client));
  }

  /// Enqueues `items` simulated work items for `client` in one transaction
  /// (the paper's 1–4 tasks per enqueue).
  Status EnqueueSim(int client, int items, int64_t vesting_delay_millis = 0);

  /// New consumer over all clusters, wired to this harness's registry and
  /// election cache.
  std::unique_ptr<core::Consumer> MakeConsumer(core::ConsumerConfig config,
                                               const std::string& id);

  /// Total simulated work items executed so far.
  int64_t WorkExecuted() const { return work_executed_.load(); }

  /// The replication group behind `cluster` (nullptr when
  /// replicas_per_cluster is 0 or the name is unknown).
  fdb::ReplicationGroup* replication(const std::string& cluster);

  /// Fails `cluster` over to a standby region and repoints the cluster
  /// name at the new primary — in-flight client operations on the old
  /// one surface kUnavailable / kCommitUnknownResult, and every
  /// re-resolved operation lands on the promoted region. Returns the new
  /// primary's region name.
  Result<std::string> Failover(
      const std::string& cluster,
      const fdb::ReplicationGroup::FailoverOptions& options = {});

  /// Kills `cluster`'s current primary region (its disk survives for a
  /// later Failover drain).
  void KillRegion(const std::string& cluster);

  /// Ships one pump of log to every standby of every cluster (the manual
  /// path when the background pump is disabled).
  void PumpReplication();

  /// Simulated process restart: tears down QuiCK, CloudKit, and every
  /// cluster, then rebuilds them from the same options. With the WAL
  /// enabled the clusters recover from their directories — leases, dead
  /// letters, and queue state resume from the last durable commit. Any
  /// consumers built before the restart must be discarded first; the
  /// executed-work counter deliberately survives (it models the client's
  /// side of the ledger).
  void Restart();

 private:
  /// Constructs clusters/CloudKit/QuiCK from options_ (ctor and Restart).
  void Build();
  void StartPump();
  void StopPump();
  /// Maps a replication event to an operator alert on alert_sink.
  void OnReplicationEvent(const std::string& cluster,
                          const fdb::ReplicationEvent& event);

  HarnessOptions options_;
  /// Replication groups, declared before clusters_ so the ClusterSet's
  /// non-owned overrides never outlive the primaries they point at.
  std::map<std::string, std::unique_ptr<fdb::ReplicationGroup>> groups_;
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::vector<std::string> names_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<core::Quick> quick_;
  core::JobRegistry registry_;
  core::LeaseCache election_;
  std::atomic<int64_t> work_executed_{0};
  std::thread pump_thread_;
  std::atomic<bool> pump_stop_{false};
};

}  // namespace quick::wl

#endif  // QUICK_WORKLOAD_HARNESS_H_
