#ifndef QUICK_WORKLOAD_PARETO_H_
#define QUICK_WORKLOAD_PARETO_H_

#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"

namespace quick::wl {

/// The paper's skew parameter: α = log₄5 ≈ 1.161 (§8).
inline double PaperAlpha() { return std::log(5.0) / std::log(4.0); }

/// One Pareto(α, x_m = 1) sample via inverse transform.
inline double SamplePareto(double alpha, Random* rng) {
  double u = rng->NextDouble();
  if (u <= 0.0) u = 1e-12;
  return std::pow(u, -1.0 / alpha);
}

/// Per-client enqueue rates (events per second) for `n` clients whose
/// frequencies follow a Pareto distribution, normalized so the aggregate
/// rate equals n * base_rate_hz — the same offered load as a uniform
/// workload, skewed across clients (§8 "Workload Generation").
inline std::vector<double> ParetoClientRates(int n, double alpha,
                                             double base_rate_hz,
                                             Random* rng) {
  std::vector<double> weights(n);
  for (double& w : weights) w = SamplePareto(alpha, rng);
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> rates(n);
  const double total_rate = base_rate_hz * n;
  for (int i = 0; i < n; ++i) {
    rates[i] = total_rate * weights[i] / sum;
  }
  return rates;
}

}  // namespace quick::wl

#endif  // QUICK_WORKLOAD_PARETO_H_
