#include "workload/harness.h"

#include <thread>

#include "fdb/retry.h"

namespace quick::wl {

Harness::Harness(const HarnessOptions& options)
    : options_(options), election_(SystemClock::Default()) {
  Build();

  const int64_t work_millis = options.work_millis;
  registry_.Register(kSimJobType, [this, work_millis](core::WorkContext&) {
    if (work_millis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(work_millis));
    }
    work_executed_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
}

void Harness::Build() {
  fdb::Database::Options db_opts;
  db_opts.clock = SystemClock::Default();
  db_opts.latency = options_.latency;
  db_opts.grv_cache_staleness_millis = options_.grv_cache_staleness_millis;
  db_opts.enable_group_commit = options_.enable_group_commit;
  db_opts.fault_plan = options_.fault_plan;
  clusters_ = std::make_unique<fdb::ClusterSet>(db_opts);
  for (int i = 0; i < options_.num_clusters; ++i) {
    const std::string name = "cluster" + std::to_string(i);
    if (options_.enable_wal) {
      fdb::Database::Options opts = db_opts;
      opts.durability.enable_wal = true;
      opts.durability.dir = options_.wal_dir + "/" + name;
      opts.durability.checkpoint_interval_bytes =
          options_.checkpoint_interval_bytes;
      clusters_->AddCluster(name, opts);
    } else {
      clusters_->AddCluster(name);
    }
    names_.push_back(name);
  }
  ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(),
                                              SystemClock::Default());
  core::QuickConfig qconfig;
  qconfig.pointer_vesting_slack_millis = options_.pointer_vesting_slack_millis;
  quick_ = std::make_unique<core::Quick>(ck_.get(), qconfig);
}

void Harness::Restart() {
  // Teardown order mirrors construction (QuiCK holds the CloudKit pointer,
  // CloudKit holds the clusters); Build() then recovers each cluster from
  // its durability directory.
  quick_.reset();
  ck_.reset();
  clusters_.reset();
  names_.clear();
  Build();
}

Status Harness::EnqueueSim(int client, int items,
                           int64_t vesting_delay_millis) {
  const ck::DatabaseId db_id = ClientDb(client);
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  core::EnqueueFollowUp follow_up;
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    for (int i = 0; i < items; ++i) {
      core::WorkItem item;
      item.job_type = kSimJobType;
      QUICK_RETURN_IF_ERROR(
          quick_
              ->EnqueueInTransaction(&txn, db, item, vesting_delay_millis,
                                     &follow_up)
              .status());
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  quick_->ExecuteFollowUp(db, follow_up);
  quick_->tenant_metrics()->OnEnqueued(db_id, items);
  return Status::OK();
}

std::unique_ptr<core::Consumer> Harness::MakeConsumer(
    core::ConsumerConfig config, const std::string& id) {
  return std::make_unique<core::Consumer>(quick_.get(), names_, &registry_,
                                          config, id, &election_);
}

}  // namespace quick::wl
