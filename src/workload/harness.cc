#include "workload/harness.h"

#include <thread>

#include "fdb/retry.h"

namespace quick::wl {

Harness::Harness(const HarnessOptions& options)
    : options_(options), election_(SystemClock::Default()) {
  Build();

  const int64_t work_millis = options.work_millis;
  registry_.Register(kSimJobType, [this, work_millis](core::WorkContext&) {
    if (work_millis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(work_millis));
    }
    work_executed_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
}

Harness::~Harness() { StopPump(); }

void Harness::OnReplicationEvent(const std::string& cluster,
                                 const fdb::ReplicationEvent& event) {
  if (options_.alert_sink == nullptr) return;
  core::Alert alert;
  switch (event.kind) {
    case fdb::ReplicationEvent::Kind::kReplicaDivergence:
      alert.kind = core::Alert::Kind::kReplicaDivergence;
      break;
    case fdb::ReplicationEvent::Kind::kPromoted:
      alert.kind = core::Alert::Kind::kReplicaPromoted;
      break;
    case fdb::ReplicationEvent::Kind::kPromotionRefused:
      alert.kind = core::Alert::Kind::kPromotionRefused;
      break;
    case fdb::ReplicationEvent::Kind::kEpochSealed:
      return;  // a normal step of every failover, not operator-actionable
  }
  alert.cluster = cluster;
  alert.detail = event.region + " epoch=" + std::to_string(event.epoch) +
                 " version=" + std::to_string(event.version) + ": " +
                 event.detail;
  options_.alert_sink->Raise(alert);
}

void Harness::Build() {
  fdb::Database::Options db_opts;
  db_opts.clock = SystemClock::Default();
  db_opts.latency = options_.latency;
  db_opts.grv_cache_staleness_millis = options_.grv_cache_staleness_millis;
  db_opts.enable_group_commit = options_.enable_group_commit;
  db_opts.fault_plan = options_.fault_plan;
  clusters_ = std::make_unique<fdb::ClusterSet>(db_opts);
  const bool replicated =
      options_.enable_wal && options_.replicas_per_cluster > 0;
  for (int i = 0; i < options_.num_clusters; ++i) {
    const std::string name = "cluster" + std::to_string(i);
    if (replicated) {
      // The cluster is a replication group: region0 primary + warm
      // standbys, fenced failover, the cluster name following the
      // promoted primary via ClusterSet::Retarget.
      fdb::ReplicationGroupOptions gopts;
      gopts.num_replicas = options_.replicas_per_cluster;
      gopts.db_options = db_opts;
      gopts.db_options.durability.checkpoint_interval_bytes =
          options_.checkpoint_interval_bytes;
      gopts.dir = options_.wal_dir + "/" + name;
      gopts.on_event = [this, name](const fdb::ReplicationEvent& event) {
        OnReplicationEvent(name, event);
      };
      auto group = std::make_unique<fdb::ReplicationGroup>(name, gopts);
      const Status st = group->Start();
      (void)st;  // a failed region surfaces as kUnavailable on first use
      clusters_->AddExternal(name, group->primary());
      groups_[name] = std::move(group);
    } else if (options_.enable_wal) {
      fdb::Database::Options opts = db_opts;
      opts.durability.enable_wal = true;
      opts.durability.dir = options_.wal_dir + "/" + name;
      opts.durability.checkpoint_interval_bytes =
          options_.checkpoint_interval_bytes;
      clusters_->AddCluster(name, opts);
    } else {
      clusters_->AddCluster(name);
    }
    names_.push_back(name);
  }
  ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(),
                                              SystemClock::Default());
  core::QuickConfig qconfig;
  qconfig.pointer_vesting_slack_millis = options_.pointer_vesting_slack_millis;
  qconfig.top_zone_shards = options_.top_zone_shards;
  quick_ = std::make_unique<core::Quick>(ck_.get(), qconfig);
  StartPump();
}

void Harness::StartPump() {
  if (groups_.empty() || options_.replication_pump_interval_millis <= 0) {
    return;
  }
  pump_stop_.store(false, std::memory_order_release);
  pump_thread_ = std::thread([this] {
    while (!pump_stop_.load(std::memory_order_acquire)) {
      for (auto& [name, group] : groups_) (void)group->PumpOnce();
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.replication_pump_interval_millis));
    }
  });
}

void Harness::StopPump() {
  pump_stop_.store(true, std::memory_order_release);
  if (pump_thread_.joinable()) pump_thread_.join();
}

fdb::ReplicationGroup* Harness::replication(const std::string& cluster) {
  auto it = groups_.find(cluster);
  return it == groups_.end() ? nullptr : it->second.get();
}

Result<std::string> Harness::Failover(
    const std::string& cluster,
    const fdb::ReplicationGroup::FailoverOptions& options) {
  auto it = groups_.find(cluster);
  if (it == groups_.end()) {
    return Status::InvalidArgument(cluster + " is not replicated");
  }
  Result<std::string> promoted = it->second->Failover(options);
  QUICK_RETURN_IF_ERROR(promoted.status());
  clusters_->Retarget(cluster, it->second->primary());
  return promoted;
}

void Harness::KillRegion(const std::string& cluster) {
  auto it = groups_.find(cluster);
  if (it != groups_.end()) it->second->KillPrimary();
}

void Harness::PumpReplication() {
  for (auto& [name, group] : groups_) (void)group->PumpOnce();
}

void Harness::Restart() {
  // Teardown order mirrors construction (QuiCK holds the CloudKit pointer,
  // CloudKit holds the clusters, the ClusterSet's overrides point into the
  // replication groups); Build() then recovers each cluster — and each
  // group's fencing manifest and regions — from its directory.
  StopPump();
  quick_.reset();
  ck_.reset();
  clusters_.reset();
  groups_.clear();
  names_.clear();
  Build();
}

Status Harness::EnqueueSim(int client, int items,
                           int64_t vesting_delay_millis) {
  const ck::DatabaseId db_id = ClientDb(client);
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  core::EnqueueFollowUp follow_up;
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    for (int i = 0; i < items; ++i) {
      core::WorkItem item;
      item.job_type = kSimJobType;
      QUICK_RETURN_IF_ERROR(
          quick_
              ->EnqueueInTransaction(&txn, db, item, vesting_delay_millis,
                                     &follow_up)
              .status());
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  quick_->ExecuteFollowUp(db, follow_up);
  quick_->tenant_metrics()->OnEnqueued(db_id, items);
  return Status::OK();
}

std::unique_ptr<core::Consumer> Harness::MakeConsumer(
    core::ConsumerConfig config, const std::string& id) {
  return std::make_unique<core::Consumer>(quick_.get(), names_, &registry_,
                                          config, id, &election_);
}

}  // namespace quick::wl
