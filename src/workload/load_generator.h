#ifndef QUICK_WORKLOAD_LOAD_GENERATOR_H_
#define QUICK_WORKLOAD_LOAD_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"
#include "workload/harness.h"
#include "workload/pareto.h"

namespace quick::wl {

struct LoadOptions {
  /// Distinct simulated clients (each with its own queue zone).
  int num_clients = 150;
  /// Per-client enqueue rate for uniform load; the paper used one enqueue
  /// per minute per client — benches compress time.
  double rate_per_client_hz = 1.0;
  /// Pareto-skewed per-client rates (Figure 6); aggregate rate unchanged.
  bool skewed = false;
  double pareto_alpha = 0.0;  // 0 = paper's log4(5)
  /// Work items per enqueue transaction (Figure 4 varies 1/2/4).
  int items_per_enqueue = 1;
  int num_threads = 4;
  uint64_t seed = 7;
};

/// Open-loop client-load generator: each simulated client enqueues on its
/// own Poisson-ish schedule (fixed intervals with start-phase jitter),
/// independent of consumer progress — the §8 client pool.
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(Harness* harness, const LoadOptions& options)
      : harness_(harness), options_(options) {}

  ~OpenLoopGenerator() { Stop(); }

  void Start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    Random rng(options_.seed);
    std::vector<double> rates;
    if (options_.skewed) {
      const double alpha =
          options_.pareto_alpha > 0 ? options_.pareto_alpha : PaperAlpha();
      rates = ParetoClientRates(options_.num_clients, alpha,
                                options_.rate_per_client_hz, &rng);
    } else {
      rates.assign(options_.num_clients, options_.rate_per_client_hz);
    }

    // Shard clients across generator threads; each thread runs an
    // earliest-deadline loop over its shard.
    for (int t = 0; t < options_.num_threads; ++t) {
      threads_.emplace_back([this, t, rates, seed = options_.seed + t] {
        RunShard(t, rates, seed);
      });
    }
  }

  void Stop() {
    running_.store(false);
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  int64_t EnqueueOps() const { return enqueue_ops_.load(); }
  int64_t ItemsEnqueued() const { return items_enqueued_.load(); }
  int64_t Errors() const { return errors_.load(); }

 private:
  void RunShard(int shard, const std::vector<double>& rates, uint64_t seed) {
    Random rng(seed);
    Clock* clock = SystemClock::Default();
    struct ClientState {
      int client;
      double interval_ms;
      int64_t next_due;
    };
    std::vector<ClientState> shard_clients;
    const int64_t now = clock->NowMillis();
    for (int c = shard; c < options_.num_clients;
         c += options_.num_threads) {
      if (rates[c] <= 0) continue;
      const double interval_ms = 1000.0 / rates[c];
      // Random phase so the shard's clients do not fire in lockstep.
      shard_clients.push_back(
          {c, interval_ms,
           now + static_cast<int64_t>(rng.NextDouble() * interval_ms)});
    }
    if (shard_clients.empty()) return;

    while (running_.load()) {
      // Earliest due client.
      ClientState* next = &shard_clients[0];
      for (ClientState& cs : shard_clients) {
        if (cs.next_due < next->next_due) next = &cs;
      }
      const int64_t wait = next->next_due - clock->NowMillis();
      if (wait > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min<int64_t>(wait, 20)));
        continue;  // re-check running_ regularly
      }
      Status st =
          harness_->EnqueueSim(next->client, options_.items_per_enqueue);
      if (st.ok()) {
        enqueue_ops_.fetch_add(1, std::memory_order_relaxed);
        items_enqueued_.fetch_add(options_.items_per_enqueue,
                                  std::memory_order_relaxed);
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      next->next_due += static_cast<int64_t>(next->interval_ms);
      // If we fell behind, skip forward rather than bursting.
      const int64_t now2 = clock->NowMillis();
      if (next->next_due < now2) next->next_due = now2;
    }
  }

  Harness* harness_;
  LoadOptions options_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
  std::atomic<int64_t> enqueue_ops_{0};
  std::atomic<int64_t> items_enqueued_{0};
  std::atomic<int64_t> errors_{0};
};

/// Closed-loop saturation feeder (Figure 4): keeps every client queue
/// backlogged so consumer throughput — not offered load — is the
/// bottleneck being measured.
class SaturationFeeder {
 public:
  SaturationFeeder(Harness* harness, int num_clients, int items_per_enqueue,
                   int num_threads = 4)
      : harness_(harness),
        num_clients_(num_clients),
        items_per_enqueue_(items_per_enqueue),
        num_threads_(num_threads) {}

  ~SaturationFeeder() { Stop(); }

  /// Target backlog per client before the feeder pauses.
  void Start(int64_t backlog_target_per_client = 4) {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    backlog_target_ = backlog_target_per_client;
    for (int t = 0; t < num_threads_; ++t) {
      threads_.emplace_back([this, t] { RunShard(t); });
    }
  }

  void Stop() {
    running_.store(false);
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  int64_t ItemsEnqueued() const { return items_enqueued_.load(); }

 private:
  void RunShard(int shard) {
    while (running_.load()) {
      bool fed_any = false;
      for (int c = shard; c < num_clients_ && running_.load();
           c += num_threads_) {
        Result<int64_t> pending =
            harness_->quick()->PendingCount(harness_->ClientDb(c));
        if (!pending.ok()) continue;
        if (*pending >= backlog_target_) continue;
        if (harness_->EnqueueSim(c, items_per_enqueue_).ok()) {
          items_enqueued_.fetch_add(items_per_enqueue_,
                                    std::memory_order_relaxed);
          fed_any = true;
        }
      }
      if (!fed_any) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }

  Harness* harness_;
  const int num_clients_;
  const int items_per_enqueue_;
  const int num_threads_;
  int64_t backlog_target_ = 4;
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
  std::atomic<int64_t> items_enqueued_{0};
};

}  // namespace quick::wl

#endif  // QUICK_WORKLOAD_LOAD_GENERATOR_H_
