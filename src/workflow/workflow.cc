#include "workflow/workflow.h"

#include "common/random.h"
#include "fdb/retry.h"
#include "fdb/transaction.h"
#include "tuple/tuple.h"

namespace quick::wf {

namespace {

using core::stage::kWorkflowCompensate;
using core::stage::kWorkflowDone;
using core::stage::kWorkflowStarted;
using core::stage::kWorkflowStepFinish;
using core::stage::kWorkflowStepStart;

/// Same-transaction WorkflowRecord read-modify-write. `mutate` sees the
/// decoded record and returns false to skip the write-back.
Status MutateRecord(fdb::Transaction& txn, const std::string& key,
                    Clock* clock,
                    const std::function<void(ck::WorkflowRecord&)>& mutate) {
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> raw, txn.Get(key));
  if (!raw.has_value()) {
    return Status::Internal("workflow record missing at " + key);
  }
  std::optional<ck::WorkflowRecord> r = ck::WorkflowRecord::Decode(*raw);
  if (!r.has_value()) {
    return Status::Internal("corrupt workflow record at " + key);
  }
  mutate(*r);
  r->updated_millis = clock->NowMillis();
  txn.Set(key, r->Encode());
  return Status::OK();
}

}  // namespace

WorkflowEngine::WorkflowEngine(core::Quick* quick,
                               core::JobRegistry* registry)
    : quick_(quick),
      registry_(registry),
      hooks_(quick->tracer(), quick->clock(), "workflow") {}

std::string WorkflowEngine::ForwardItemId(const std::string& workflow_id,
                                          int step) {
  return workflow_id + ".f" + std::to_string(step);
}

std::string WorkflowEngine::CompensateItemId(const std::string& workflow_id,
                                             int step) {
  return workflow_id + ".c" + std::to_string(step);
}

std::string WorkflowEngine::JobTypeFor(const std::string& saga) {
  return "_wf." + saga;
}

std::string WorkflowEngine::EncodePayload(const std::string& workflow_id,
                                          const std::string& saga,
                                          bool compensating, int64_t step,
                                          const std::string& payload) {
  return tup::Tuple()
      .AddString(workflow_id)
      .AddString(saga)
      .AddInt(compensating ? 1 : 0)
      .AddInt(step)
      .AddString(payload)
      .Encode();
}

std::optional<WorkflowEngine::DecodedPayload> WorkflowEngine::DecodePayload(
    std::string_view raw) {
  Result<tup::Tuple> t = tup::Tuple::Decode(raw);
  if (!t.ok() || t->size() != 5) return std::nullopt;
  auto wf = t->GetString(0);
  auto saga = t->GetString(1);
  auto comp = t->GetInt(2);
  auto step = t->GetInt(3);
  auto payload = t->GetString(4);
  if (!wf.ok() || !saga.ok() || !comp.ok() || !step.ok() || !payload.ok()) {
    return std::nullopt;
  }
  DecodedPayload p;
  p.workflow_id = *std::move(wf);
  p.saga = *std::move(saga);
  p.compensating = *comp != 0;
  p.step = *step;
  p.payload = *std::move(payload);
  return p;
}

int WorkflowEngine::PreviousCompensable(const SagaSpec& spec, int below) {
  for (int j = below - 1; j >= 0; --j) {
    if (spec.steps[j].compensate != nullptr) return j;
  }
  return -1;
}

Status WorkflowEngine::RegisterSaga(SagaSpec saga) {
  if (saga.name.empty()) {
    return Status::InvalidArgument("saga needs a name");
  }
  if (saga.steps.empty()) {
    return Status::InvalidArgument("saga " + saga.name + " has no steps");
  }
  for (const StepSpec& s : saga.steps) {
    if (s.run == nullptr) {
      return Status::InvalidArgument("saga " + saga.name +
                                     " has a step without a run function");
    }
  }
  auto spec = std::make_shared<const SagaSpec>(std::move(saga));
  {
    std::lock_guard<std::mutex> lock(mu_);
    sagas_[spec->name] = spec;
  }
  registry_->RegisterWork(
      JobTypeFor(spec->name),
      [this, spec](core::WorkContext& ctx) -> core::WorkResult {
        std::optional<DecodedPayload> p = DecodePayload(ctx.item.payload);
        if (!p.has_value() || p->step < 0 ||
            p->step >= static_cast<int64_t>(spec->steps.size())) {
          return core::WorkResult(
              Status::Permanent("corrupt workflow payload on item " +
                                ctx.item.id));
        }
        return p->compensating ? RunCompensate(spec, ctx, *p)
                               : RunForward(spec, ctx, *p);
      },
      spec->policy,
      [this, spec](core::WorkContext& ctx,
                   const Status& final_status) -> core::WorkResult {
        std::optional<DecodedPayload> p = DecodePayload(ctx.item.payload);
        if (!p.has_value() || p->step < 0 ||
            p->step >= static_cast<int64_t>(spec->steps.size())) {
          // Undecodable item headed for the quarantine: nothing to chain.
          return core::WorkResult(Status::OK());
        }
        return p->compensating
                   ? OnCompensateTerminal(spec, ctx, *p, final_status)
                   : OnForwardTerminal(spec, ctx, *p, final_status);
      });
  return Status::OK();
}

core::WorkResult WorkflowEngine::RunForward(
    const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
    const DecodedPayload& p) {
  const int step = static_cast<int>(p.step);
  const int total = static_cast<int>(spec->steps.size());
  const StepSpec& step_spec = spec->steps[step];
  hooks_.Mark(p.workflow_id, kWorkflowStepStart,
              "step=" + std::to_string(step) + " name=" + step_spec.name,
              /*parent=*/ctx.item.id);
  StepContext sctx;
  sctx.payload = p.payload;
  sctx.next_payload = p.payload;
  const int64_t start = hooks_.NowMicros();
  Status st = step_spec.run(ctx, sctx);
  hooks_.Record(p.workflow_id, kWorkflowStepFinish, start, hooks_.NowMicros(),
                "step=" + std::to_string(step) + " status=" +
                    std::string(StatusCodeName(st.code())),
                /*parent=*/ctx.item.id);
  if (!st.ok()) return core::WorkResult(st);

  const bool last = step + 1 == total;
  core::WorkResult wr{Status::OK()};
  wr.effects = std::move(sctx.effects);
  if (!last) {
    core::ContinuationEnqueue next;
    next.job_type = JobTypeFor(spec->name);
    next.id = ForwardItemId(p.workflow_id, step + 1);
    next.payload = EncodePayload(p.workflow_id, spec->name,
                                 /*compensating=*/false, step + 1,
                                 sctx.next_payload);
    wr.continuations.push_back(std::move(next));
  } else {
    hooks_.Mark(p.workflow_id, kWorkflowDone,
                "completed steps=" + std::to_string(total),
                /*parent=*/ctx.item.id);
  }
  const std::string key = ck::WorkflowRecord::Key(ctx.db_id, p.workflow_id);
  Clock* clock = ctx.clock;
  wr.txn_hook = [key, clock, step, last](fdb::Transaction& txn) {
    return MutateRecord(txn, key, clock, [&](ck::WorkflowRecord& r) {
      if (step < static_cast<int>(r.step_status.size())) {
        r.step_status[step] = 'X';
      }
      r.current_step = step + 1;
      if (last) r.state = ck::WorkflowRecord::State::kCompleted;
    });
  };
  return wr;
}

core::WorkResult WorkflowEngine::RunCompensate(
    const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
    const DecodedPayload& p) {
  const int step = static_cast<int>(p.step);
  const StepSpec& step_spec = spec->steps[step];
  Status st = Status::OK();
  if (step_spec.compensate != nullptr) {
    StepContext sctx;
    sctx.payload = p.payload;
    sctx.next_payload = p.payload;
    const int64_t start = hooks_.NowMicros();
    st = step_spec.compensate(ctx, sctx);
    hooks_.Record(p.workflow_id, kWorkflowCompensate, start,
                  hooks_.NowMicros(),
                  "step=" + std::to_string(step) + " name=" + step_spec.name +
                      " status=" + std::string(StatusCodeName(st.code())),
                  /*parent=*/ctx.item.id);
    if (!st.ok()) return core::WorkResult(st);
    core::WorkResult wr{Status::OK()};
    wr.effects = std::move(sctx.effects);
    return FinishCompensation(spec, ctx, p, std::move(wr));
  }
  return FinishCompensation(spec, ctx, p, core::WorkResult{Status::OK()});
}

core::WorkResult WorkflowEngine::FinishCompensation(
    const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
    const DecodedPayload& p, core::WorkResult wr) {
  const int step = static_cast<int>(p.step);
  const int next = PreviousCompensable(*spec, step);
  if (next >= 0) {
    core::ContinuationEnqueue c;
    c.job_type = JobTypeFor(spec->name);
    c.id = CompensateItemId(p.workflow_id, next);
    c.payload = EncodePayload(p.workflow_id, spec->name,
                              /*compensating=*/true, next, p.payload);
    wr.continuations.push_back(std::move(c));
  } else {
    hooks_.Mark(p.workflow_id, kWorkflowDone, "compensated",
                /*parent=*/ctx.item.id);
  }
  const std::string key = ck::WorkflowRecord::Key(ctx.db_id, p.workflow_id);
  Clock* clock = ctx.clock;
  wr.txn_hook = [key, clock, step, next](fdb::Transaction& txn) {
    return MutateRecord(txn, key, clock, [&](ck::WorkflowRecord& r) {
      if (step < static_cast<int>(r.step_status.size())) {
        r.step_status[step] = 'C';
      }
      if (next >= 0) {
        r.current_step = next;
      } else {
        r.state = ck::WorkflowRecord::State::kCompensated;
      }
    });
  };
  return wr;
}

core::WorkResult WorkflowEngine::OnForwardTerminal(
    const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
    const DecodedPayload& p, const Status& final_status) {
  const int step = static_cast<int>(p.step);
  const int j = PreviousCompensable(*spec, step);
  hooks_.Mark(p.workflow_id, kWorkflowCompensate,
              "step=" + std::to_string(step) + " dead-lettered, rollback" +
                  (j >= 0 ? " from step " + std::to_string(j) : " empty"),
              /*parent=*/ctx.item.id);
  core::WorkResult wr{Status::OK()};
  if (j >= 0) {
    core::ContinuationEnqueue c;
    c.job_type = JobTypeFor(spec->name);
    c.id = CompensateItemId(p.workflow_id, j);
    c.payload = EncodePayload(p.workflow_id, spec->name,
                              /*compensating=*/true, j, p.payload);
    wr.continuations.push_back(std::move(c));
  } else {
    hooks_.Mark(p.workflow_id, kWorkflowDone, "compensated (empty rollback)",
                /*parent=*/ctx.item.id);
  }
  const std::string key = ck::WorkflowRecord::Key(ctx.db_id, p.workflow_id);
  Clock* clock = ctx.clock;
  const std::string msg = final_status.message();
  wr.txn_hook = [key, clock, step, j, msg](fdb::Transaction& txn) {
    return MutateRecord(txn, key, clock, [&](ck::WorkflowRecord& r) {
      if (step < static_cast<int>(r.step_status.size())) {
        r.step_status[step] = 'D';
      }
      r.failure = msg;
      if (j >= 0) {
        r.state = ck::WorkflowRecord::State::kCompensating;
        r.current_step = j;
      } else {
        r.state = ck::WorkflowRecord::State::kCompensated;
      }
    });
  };
  return wr;
}

core::WorkResult WorkflowEngine::OnCompensateTerminal(
    const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
    const DecodedPayload& p, const Status& final_status) {
  (void)spec;
  const int step = static_cast<int>(p.step);
  hooks_.Mark(p.workflow_id, kWorkflowDone,
              "failed: compensation step=" + std::to_string(step) +
                  " dead-lettered",
              /*parent=*/ctx.item.id);
  core::WorkResult wr{Status::OK()};
  const std::string key = ck::WorkflowRecord::Key(ctx.db_id, p.workflow_id);
  Clock* clock = ctx.clock;
  const std::string msg = final_status.message();
  wr.txn_hook = [key, clock, msg](fdb::Transaction& txn) {
    return MutateRecord(txn, key, clock, [&](ck::WorkflowRecord& r) {
      r.state = ck::WorkflowRecord::State::kFailed;
      r.failure = msg;
    });
  };
  return wr;
}

Result<std::string> WorkflowEngine::Start(const ck::DatabaseId& db_id,
                                          const std::string& saga,
                                          const std::string& payload,
                                          std::string workflow_id) {
  std::shared_ptr<const SagaSpec> spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sagas_.find(saga);
    if (it != sagas_.end()) spec = it->second;
  }
  if (spec == nullptr) {
    return Status::InvalidArgument("unknown saga " + saga);
  }
  if (workflow_id.empty()) {
    workflow_id = Random::ThreadLocal().NextUuid();
  }
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  const std::string key = ck::WorkflowRecord::Key(db_id, workflow_id);
  const std::string item_id = ForwardItemId(workflow_id, 0);
  core::EnqueueFollowUp follow_up;
  const int64_t start_micros = hooks_.NowMicros();
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    QUICK_ASSIGN_OR_RETURN(std::optional<std::string> existing, txn.Get(key));
    if (existing.has_value()) {
      return Status::AlreadyExists("workflow " + workflow_id + " exists");
    }
    ck::WorkflowRecord r;
    r.id = workflow_id;
    r.saga = spec->name;
    r.state = ck::WorkflowRecord::State::kRunning;
    r.current_step = 0;
    r.total_steps = static_cast<int64_t>(spec->steps.size());
    r.step_status = std::string(spec->steps.size(), 'P');
    r.created_millis = r.updated_millis = quick_->clock()->NowMillis();
    txn.Set(key, r.Encode());
    core::WorkItem item;
    item.job_type = JobTypeFor(spec->name);
    item.id = item_id;
    item.payload = EncodePayload(workflow_id, spec->name,
                                 /*compensating=*/false, 0, payload);
    return quick_
        ->EnqueueInTransaction(&txn, db, item, /*vesting_delay_millis=*/0,
                               &follow_up)
        .status();
  });
  QUICK_RETURN_IF_ERROR(st);
  quick_->tenant_metrics()->OnEnqueued(db_id, 1);
  if (hooks_.enabled()) {
    hooks_.Record(item_id, core::stage::kEnqueued, start_micros,
                  hooks_.NowMicros(), "workflow=" + workflow_id);
    hooks_.Mark(workflow_id, kWorkflowStarted,
                "saga=" + spec->name +
                    " steps=" + std::to_string(spec->steps.size()) +
                    " db=" + db_id.ToString(),
                /*parent=*/item_id);
  }
  quick_->ExecuteFollowUp(db, follow_up);
  return workflow_id;
}

fdb::Future<Status> WorkflowEngine::StartAsync(const ck::DatabaseId& db_id,
                                               const std::string& saga,
                                               const std::string& payload,
                                               std::string* workflow_id_out,
                                               fdb::Executor* exec,
                                               fdb::CancelToken cancel) {
  auto promise = std::make_shared<fdb::Promise<Status>>();
  std::shared_ptr<const SagaSpec> spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sagas_.find(saga);
    if (it != sagas_.end()) spec = it->second;
  }
  if (spec == nullptr) {
    if (workflow_id_out != nullptr) workflow_id_out->clear();
    promise->Set(Status::InvalidArgument("unknown saga " + saga));
    return promise->GetFuture();
  }
  const std::string workflow_id = Random::ThreadLocal().NextUuid();
  if (workflow_id_out != nullptr) *workflow_id_out = workflow_id;
  auto db = std::make_shared<ck::DatabaseRef>(quick_->cloudkit()->OpenDatabase(db_id));
  auto follow_up = std::make_shared<core::EnqueueFollowUp>();
  const std::string key = ck::WorkflowRecord::Key(db_id, workflow_id);
  const std::string item_id = ForwardItemId(workflow_id, 0);
  const int64_t start_micros = hooks_.NowMicros();
  return fdb::RunTransactionAsync(
             db->cluster,
             [this, spec, db, follow_up, key, item_id, workflow_id, payload,
              db_id](fdb::Transaction& txn) {
               QUICK_ASSIGN_OR_RETURN(std::optional<std::string> existing,
                                      txn.Get(key));
               if (existing.has_value()) {
                 return Status::AlreadyExists("workflow " + workflow_id +
                                              " exists");
               }
               ck::WorkflowRecord r;
               r.id = workflow_id;
               r.saga = spec->name;
               r.state = ck::WorkflowRecord::State::kRunning;
               r.current_step = 0;
               r.total_steps = static_cast<int64_t>(spec->steps.size());
               r.step_status = std::string(spec->steps.size(), 'P');
               r.created_millis = r.updated_millis =
                   quick_->clock()->NowMillis();
               txn.Set(key, r.Encode());
               core::WorkItem item;
               item.job_type = JobTypeFor(spec->name);
               item.id = item_id;
               item.payload = EncodePayload(workflow_id, spec->name,
                                            /*compensating=*/false, 0,
                                            payload);
               return quick_
                   ->EnqueueInTransaction(&txn, *db, item,
                                          /*vesting_delay_millis=*/0,
                                          follow_up.get())
                   .status();
             },
             exec, cancel)
      .Then([this, spec, db, follow_up, db_id, workflow_id, item_id,
             start_micros](Status st) -> fdb::Future<Status> {
        auto done = std::make_shared<fdb::Promise<Status>>();
        if (st.ok()) {
          quick_->tenant_metrics()->OnEnqueued(db_id, 1);
          if (hooks_.enabled()) {
            hooks_.Record(item_id, core::stage::kEnqueued, start_micros,
                          hooks_.NowMicros(), "workflow=" + workflow_id);
            hooks_.Mark(workflow_id, kWorkflowStarted,
                        "saga=" + spec->name + " steps=" +
                            std::to_string(spec->steps.size()) + " async",
                        /*parent=*/item_id);
          }
          quick_->ExecuteFollowUp(*db, *follow_up);
        }
        done->Set(st);
        return done->GetFuture();
      });
}

Result<std::optional<ck::WorkflowRecord>> WorkflowEngine::Load(
    const ck::DatabaseId& db_id, const std::string& workflow_id) {
  const ck::DatabaseRef db = quick_->cloudkit()->OpenDatabase(db_id);
  const std::string key = ck::WorkflowRecord::Key(db_id, workflow_id);
  return fdb::RunTransactionResult<std::optional<ck::WorkflowRecord>>(
      db.cluster, fdb::TransactionOptions{},
      [&](fdb::Transaction& txn, std::optional<ck::WorkflowRecord>* out) {
        out->reset();
        QUICK_ASSIGN_OR_RETURN(std::optional<std::string> raw, txn.Get(key));
        if (!raw.has_value()) return Status::OK();
        std::optional<ck::WorkflowRecord> r =
            ck::WorkflowRecord::Decode(*raw);
        if (!r.has_value()) {
          return Status::Internal("corrupt workflow record at " + key);
        }
        *out = *std::move(r);
        return Status::OK();
      });
}

}  // namespace quick::wf
