#ifndef QUICK_WORKFLOW_WORKFLOW_H_
#define QUICK_WORKFLOW_WORKFLOW_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cloudkit/workflow_record.h"
#include "fdb/executor.h"
#include "fdb/future.h"
#include "quick/job_registry.h"
#include "quick/quick.h"
#include "quick/trace_hooks.h"

namespace quick::wf {

/// Per-step scratch handed to a step function alongside the queue-level
/// WorkContext.
struct StepContext {
  /// The payload this step executes with (the saga's start payload for step
  /// 0, the previous step's next_payload afterwards; compensations get the
  /// payload their forward chain was carrying when it failed).
  std::string payload;
  /// Carried to the next forward step; initialized to `payload`.
  std::string next_payload;
  /// External side-effects this step intends. Recorded as transactional-
  /// outbox rows in the step's finish transaction and applied exactly once
  /// per idempotency key by the OutboxRelay.
  std::vector<core::OutboxEffect> effects;
};

using StepFn = std::function<Status(core::WorkContext&, StepContext&)>;

struct StepSpec {
  std::string name;
  StepFn run;
  /// Optional undo. On saga rollback, compensations of the executed steps
  /// run in reverse step order; steps without one keep their 'X' status.
  StepFn compensate;
};

struct SagaSpec {
  std::string name;
  std::vector<StepSpec> steps;
  /// Retry policy applied to every step (and compensation) item.
  core::RetryPolicy policy;
};

/// The saga/workflow engine: each registered saga becomes one job type
/// ("_wf.<name>"), each step one queue item. The engine's handlers return
/// WorkResults whose continuations, outbox rows, and record updates commit
/// in the SAME FoundationDB transaction as the step item's Complete or
/// Quarantine — Gray's queued-transaction pattern, so every workflow state
/// transition is exactly-once even though step handlers run at-least-once.
///
/// Crash story: a consumer dying mid-step abandons the item's lease; another
/// consumer re-executes the step (handlers must tolerate re-execution; their
/// external effects are deduped by the outbox) and the finish commits once.
/// Deterministic step-item ids ("<wf_id>.f<i>" forward, "<wf_id>.c<j>"
/// compensation) make the enqueues idempotent, so a re-executed finish can
/// never fork the chain.
///
/// Lifecycle: the engine borrows Quick and the registry; after a substrate
/// restart (e.g. workload::Harness::Restart) construct a fresh engine over
/// the new Quick and re-register the sagas — registration overwrites the
/// stale closures in the surviving registry.
class WorkflowEngine {
 public:
  WorkflowEngine(core::Quick* quick, core::JobRegistry* registry);

  /// Registers `saga`'s job type. InvalidArgument on an unnamed saga, a
  /// saga with no steps, or a step without a run function.
  Status RegisterSaga(SagaSpec saga);

  /// Starts one workflow instance: writes the kRunning WorkflowRecord and
  /// enqueues step 0, in one transaction (neither exists on failure).
  /// `workflow_id` is the idempotency handle; random when empty.
  /// AlreadyExists when a record with that id exists.
  Result<std::string> Start(const ck::DatabaseId& db_id,
                            const std::string& saga,
                            const std::string& payload,
                            std::string workflow_id = "");

  /// Start's pipelined twin for continuation fan-out: the start transaction
  /// rides the cluster's async commit pipeline. The workflow id is written
  /// to *workflow_id_out up front (meaningful once the future resolves OK).
  fdb::Future<Status> StartAsync(const ck::DatabaseId& db_id,
                                 const std::string& saga,
                                 const std::string& payload,
                                 std::string* workflow_id_out,
                                 fdb::Executor* exec,
                                 fdb::CancelToken cancel = {});

  /// Strong read of a workflow's record; nullopt when unknown.
  Result<std::optional<ck::WorkflowRecord>> Load(
      const ck::DatabaseId& db_id, const std::string& workflow_id);

  /// Deterministic item ids, exposed for tests and trace tooling.
  static std::string ForwardItemId(const std::string& workflow_id, int step);
  static std::string CompensateItemId(const std::string& workflow_id,
                                      int step);
  static std::string JobTypeFor(const std::string& saga);

 private:
  struct DecodedPayload {
    std::string workflow_id;
    std::string saga;
    bool compensating = false;
    int64_t step = 0;
    std::string payload;
  };
  static std::string EncodePayload(const std::string& workflow_id,
                                   const std::string& saga, bool compensating,
                                   int64_t step, const std::string& payload);
  static std::optional<DecodedPayload> DecodePayload(std::string_view raw);

  core::WorkResult RunForward(const std::shared_ptr<const SagaSpec>& spec,
                              core::WorkContext& ctx,
                              const DecodedPayload& p);
  core::WorkResult RunCompensate(const std::shared_ptr<const SagaSpec>& spec,
                                 core::WorkContext& ctx,
                                 const DecodedPayload& p);
  /// Shared tail of a successful (or no-op) compensation step: chain the
  /// next compensation downward or close the record as kCompensated.
  core::WorkResult FinishCompensation(
      const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
      const DecodedPayload& p, core::WorkResult wr);
  core::WorkResult OnForwardTerminal(
      const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
      const DecodedPayload& p, const Status& final_status);
  core::WorkResult OnCompensateTerminal(
      const std::shared_ptr<const SagaSpec>& spec, core::WorkContext& ctx,
      const DecodedPayload& p, const Status& final_status);

  /// Highest step index < `below` with a compensate function, or -1.
  static int PreviousCompensable(const SagaSpec& spec, int below);

  core::Quick* quick_;
  core::JobRegistry* registry_;
  core::TraceHooks hooks_;

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SagaSpec>> sagas_;
};

}  // namespace quick::wf

#endif  // QUICK_WORKFLOW_WORKFLOW_H_
