#include "external/external_queue.h"

#include <algorithm>

#include "common/random.h"
#include "fdb/retry.h"

namespace quick::ext {

ExternalQueue::ExternalQueue(ck::CloudKitService* cloudkit,
                             ExternalStore* store,
                             core::JobRegistry* registry)
    : ExternalQueue(cloudkit, store, registry, Options{}) {}

ExternalQueue::ExternalQueue(ck::CloudKitService* cloudkit,
                             ExternalStore* store,
                             core::JobRegistry* registry, Options options)
    : cloudkit_(cloudkit),
      store_(store),
      registry_(registry),
      options_(options) {}

Result<std::string> ExternalQueue::Enqueue(const ck::DatabaseId& db_id,
                                           const std::string& job_type,
                                           const std::string& payload) {
  const std::string queue_key = QueueKey(db_id);
  ExternalItem item;
  item.id = Random::ThreadLocal().NextUuid();
  item.job_type = job_type;
  item.payload = payload;
  item.enqueue_time = cloudkit_->clock()->NowMillis();

  // Step 1: the item lands in the external store first.
  QUICK_RETURN_IF_ERROR(store_->Put(queue_key, item));

  // Step 2: make the pointer findable, transactionally in FDB.
  const ck::DatabaseRef db = cloudkit_->OpenDatabase(db_id);
  const ck::DatabaseRef cluster_db =
      cloudkit_->OpenClusterDb(db.cluster->name());
  const core::Pointer pointer{db_id, options_.top_zone_name};
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone top_zone = OpenTopZone(cluster_db, &txn);
    const std::string index_key =
        top_zone.DbKeyIndexEntryKey(pointer.Key(), pointer.Key());
    QUICK_ASSIGN_OR_RETURN(std::optional<std::string> entry,
                           txn.Get(index_key));
    if (entry.has_value()) {
      // Read-only transaction + declared write conflict on the index key:
      // forces resolution against concurrent pointer deletions without
      // writing anything (§6.1).
      txn.AddWriteConflictKey(index_key);
      return Status::OK();
    }
    ck::QueuedItem pointer_item = pointer.ToItem();
    pointer_item.last_active_time = cloudkit_->clock()->NowMillis();
    return top_zone.Enqueue(std::move(pointer_item), 0).status();
  });
  if (!st.ok()) {
    stats_.enqueue_fdb_aborts.Increment();
    // The pointer write never committed: garbage-collect the external item
    // so it cannot be resurrected later. Best effort — a failed delete
    // leaves an orphan, and the client's enqueue fails either way (§6.1).
    if (store_->Delete(queue_key, item.id).ok()) {
      stats_.orphans_garbage_collected.Increment();
    }
    return st;
  }
  stats_.items_enqueued.Increment();
  return item.id;
}

Result<int> ExternalQueue::RunOnePass(const std::string& cluster_name,
                                      int max_pointers) {
  fdb::Database* cluster = cloudkit_->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  const ck::DatabaseRef cluster_db = cloudkit_->OpenClusterDb(cluster_name);

  std::vector<std::string> ids;
  {
    fdb::Transaction txn = cluster->CreateTransaction();
    ck::QueueZone top_zone = OpenTopZone(cluster_db, &txn);
    QUICK_ASSIGN_OR_RETURN(ids, top_zone.PeekIds(max_pointers));
  }
  int visited = 0;
  for (const std::string& id : ids) {
    fdb::Transaction txn = cluster->CreateTransaction();
    ck::QueueZone top_zone = OpenTopZone(cluster_db, &txn);
    Result<std::optional<ck::QueuedItem>> loaded = top_zone.Load(id);
    QUICK_RETURN_IF_ERROR(loaded.status());
    if (!loaded->has_value()) continue;
    Result<std::string> lease =
        top_zone.ObtainLease(id, options_.pointer_lease_millis);
    Status commit = lease.ok() ? txn.Commit() : lease.status();
    if (!commit.ok()) {
      stats_.lease_collisions.Increment();
      continue;
    }
    ck::QueuedItem pointer_item = **loaded;
    pointer_item.lease_id = *lease;
    QUICK_RETURN_IF_ERROR(ProcessPointer(cluster_name, pointer_item));
    ++visited;
  }
  return visited;
}

Status ExternalQueue::ProcessPointer(const std::string& cluster_name,
                                     const ck::QueuedItem& pointer_item) {
  fdb::Database* cluster = cloudkit_->clusters()->Get(cluster_name);
  const ck::DatabaseRef cluster_db = cloudkit_->OpenClusterDb(cluster_name);
  QUICK_ASSIGN_OR_RETURN(core::Pointer pointer,
                         core::Pointer::FromItem(pointer_item));
  const std::string queue_key = pointer.db_id.ToKeyString();
  const int64_t now = cloudkit_->clock()->NowMillis();

  // Strong read of the external queue (§6.1's correctness requirement).
  QUICK_ASSIGN_OR_RETURN(
      std::vector<ExternalItem> items,
      store_->List(queue_key, options_.max_items_per_visit,
                   /*strong=*/options_.strong_reads));

  bool processed_any = false;
  for (const ExternalItem& item : items) {
    std::shared_ptr<const core::JobRegistry::Entry> entry =
        registry_->Find(item.job_type);
    Status result = Status::Permanent("no handler for " + item.job_type);
    if (entry != nullptr) {
      core::WorkContext ctx;
      ctx.item.id = item.id;
      ctx.item.job_type = item.job_type;
      ctx.item.payload = item.payload;
      ctx.item.enqueue_time = item.enqueue_time;
      ctx.db_id = pointer.db_id;
      ctx.zone = options_.top_zone_name;
      ctx.clock = cloudkit_->clock();
      ctx.deadline_millis = now + entry->policy.execution_bound_millis;
      // External-store items are plain Status jobs: continuations/effects
      // would need an fdb finish transaction this path does not have.
      result = entry->handler(ctx).status;
    }
    if (result.ok() || result.IsPermanent()) {
      // Done (or unretryable): remove from the external store. NotFound is
      // fine — another consumer got there first (at-least-once).
      Status st = store_->Delete(queue_key, item.id);
      if (st.ok() || st.IsNotFound()) {
        if (result.ok()) {
          stats_.items_processed.Increment();
          processed_any = true;
        } else {
          stats_.items_failed.Increment();
        }
      }
    } else {
      stats_.items_failed.Increment();
      // Leave the item in place; the pointer requeue below retries later.
    }
  }

  QUICK_ASSIGN_OR_RETURN(bool empty, store_->IsEmpty(queue_key));
  if (!empty) {
    // Requeue the pointer immediately: more work (or retries) pending.
    return fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone top_zone = OpenTopZone(cluster_db, &txn);
      QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> current,
                             top_zone.Load(pointer_item.id));
      if (!current.has_value() ||
          current->lease_id != pointer_item.lease_id) {
        return Status::OK();
      }
      ck::QueuedItem updated = *std::move(current);
      updated.vesting_time = cloudkit_->clock()->NowMillis();
      updated.lease_id.clear();
      updated.last_active_time = cloudkit_->clock()->NowMillis();
      return top_zone.SaveItem(updated);
    });
  }

  const int64_t last_active =
      processed_any ? now : pointer_item.last_active_time;
  if (now - last_active < options_.min_inactive_millis && !processed_any) {
    return Status::OK();  // grace period: leave the pointer for reuse
  }
  if (processed_any) {
    // Refresh last_active; GC happens on a later visit after the grace.
    return fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone top_zone = OpenTopZone(cluster_db, &txn);
      QUICK_ASSIGN_OR_RETURN(std::optional<ck::QueuedItem> current,
                             top_zone.Load(pointer_item.id));
      if (!current.has_value() ||
          current->lease_id != pointer_item.lease_id) {
        return Status::OK();
      }
      ck::QueuedItem updated = *std::move(current);
      updated.lease_id.clear();
      updated.vesting_time = cloudkit_->clock()->NowMillis();
      updated.last_active_time = cloudkit_->clock()->NowMillis();
      return top_zone.SaveItem(updated);
    });
  }

  // GC: delete the pointer. The transaction reads the pointer-index key so
  // any §6.1 enqueue that declared a write conflict on it — or created the
  // pointer anew — aborts this deletion; the external store is re-checked
  // strongly just before committing.
  fdb::Transaction txn = cluster->CreateTransaction();
  ck::QueueZone top_zone = OpenTopZone(cluster_db, &txn);
  const std::string index_key =
      top_zone.DbKeyIndexEntryKey(pointer.Key(), pointer.Key());
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> entry,
                         txn.Get(index_key));
  if (!entry.has_value()) return Status::OK();  // already gone
  QUICK_ASSIGN_OR_RETURN(bool still_empty, store_->IsEmpty(queue_key));
  if (!still_empty) {
    stats_.gc_aborted.Increment();
    return Status::OK();
  }
  Status st = top_zone.Complete(pointer_item.id, pointer_item.lease_id);
  if (st.IsNotFound() || st.IsLeaseLost()) return Status::OK();
  QUICK_RETURN_IF_ERROR(st);
  Status commit = txn.Commit();
  if (commit.IsNotCommitted()) {
    stats_.gc_aborted.Increment();
    return Status::OK();
  }
  if (commit.ok()) stats_.pointers_deleted.Increment();
  return commit;
}

}  // namespace quick::ext
