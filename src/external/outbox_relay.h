#ifndef QUICK_EXTERNAL_OUTBOX_RELAY_H_
#define QUICK_EXTERNAL_OUTBOX_RELAY_H_

#include <map>
#include <mutex>
#include <string>

#include "cloudkit/outbox.h"
#include "cloudkit/service.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "quick/trace_hooks.h"

namespace quick::ext {

/// The external system an outbox effect lands in. Apply must be idempotent
/// per idempotency key — the relay guarantees at-least-once *attempts*
/// (a crash between Apply and the row's Ack re-delivers), the store's
/// dedupe turns that into exactly-once *effects*. This is the usual
/// transactional-outbox contract: think a payment API with idempotency
/// keys, or a mail gateway with message ids.
class EffectStore {
 public:
  virtual ~EffectStore() = default;

  /// Applies (target, payload) under `idempotency_key`. Returns true when
  /// the effect was newly applied, false when this key was seen before
  /// (a deduplicated redelivery). Errors are retried on a later pass.
  virtual Result<bool> Apply(const std::string& target,
                             const std::string& idempotency_key,
                             const std::string& payload) = 0;
};

/// In-memory effect store for tests and chaos suites: counts how many times
/// each key was *applied* (must stay ≤ 1 for the exactly-once property) and
/// how many redeliveries were deduplicated. Thread-safe.
class SimEffectStore : public EffectStore {
 public:
  Result<bool> Apply(const std::string& target,
                     const std::string& idempotency_key,
                     const std::string& payload) override;

  /// Highest per-key application count — the exactly-once assertion is
  /// MaxApplications() <= 1.
  int64_t MaxApplications() const;
  /// Keys ever applied.
  int64_t TotalApplied() const;
  /// Redeliveries the dedupe absorbed (crash-between-effect-and-ack).
  int64_t DuplicateAttempts() const;
  /// Payload last applied under `key` (empty when never applied).
  std::string PayloadFor(const std::string& key) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> applications_;
  std::map<std::string, std::string> payloads_;
  int64_t duplicate_attempts_ = 0;
};

/// Drains a cluster's transactional outbox (ck::Outbox) into an
/// EffectStore. One pass: strong-read a batch of rows, Apply each, then
/// acknowledge each applied row by deleting it in its own conflict-checked
/// transaction. Crash-safe at every point:
///  - crash before Apply: the row survives, a later pass retries;
///  - crash between Apply and Ack: the row survives, the next pass
///    re-Applies and the store dedupes (duplicate attempt, no duplicate
///    effect);
///  - a concurrent relay's Ack raced ours: NotFound, counted, harmless.
class OutboxRelay {
 public:
  struct Options {
    /// Rows per pass; 0 drains everything visible in one read.
    int batch_limit = 0;
    /// Chaos hook: false simulates a relay that crashes after applying
    /// effects but before acknowledging any row.
    bool ack_enabled = true;
    /// Span store for outbox_relay spans; Tracer::Default() when null.
    Tracer* tracer = nullptr;
  };

  struct Stats {
    Counter effects_applied;   // newly applied by the store
    Counter effects_deduped;   // redeliveries the store absorbed
    Counter rows_acked;        // outbox rows deleted
    Counter ack_conflicts;     // row already gone (racing relay)
    Counter apply_failures;    // store errors, retried next pass
  };

  OutboxRelay(ck::CloudKitService* cloudkit, EffectStore* store);
  OutboxRelay(ck::CloudKitService* cloudkit, EffectStore* store,
              Options options);

  /// Returns the number of rows visited (applied or deduped).
  Result<int> RunOnePass(const std::string& cluster_name);

  /// Rows still pending — the relay lag, in effects.
  Result<int64_t> Lag(const std::string& cluster_name);

  Stats& stats() { return stats_; }

 private:
  ck::CloudKitService* cloudkit_;
  EffectStore* store_;
  Options options_;
  Stats stats_;
  core::TraceHooks hooks_;
};

}  // namespace quick::ext

#endif  // QUICK_EXTERNAL_OUTBOX_RELAY_H_
