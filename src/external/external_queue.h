#ifndef QUICK_EXTERNAL_EXTERNAL_QUEUE_H_
#define QUICK_EXTERNAL_EXTERNAL_QUEUE_H_

#include <memory>
#include <string>

#include "external/external_store.h"
#include "quick/consumer.h"
#include "quick/quick.h"

namespace quick::ext {

/// Statistics of the external-queue processor.
struct ExternalStats {
  Counter items_enqueued;
  Counter enqueue_fdb_aborts;
  Counter orphans_garbage_collected;
  Counter items_processed;
  Counter items_failed;
  Counter pointers_deleted;
  Counter gc_aborted;
  Counter lease_collisions;
};

/// QuiCK's support for data stores other than FoundationDB (§6.1). The
/// top-level queue Q_C and the pointer index stay in FoundationDB; only the
/// work items live in the external store, so there is no transactionality
/// between the two. The protocol preserves at-least-once:
///
///  - Enqueue writes the item externally first, then runs an FDB
///    transaction that reads the pointer-index key; when the pointer is
///    missing it is created (a real write), and when it exists the
///    otherwise read-only transaction DECLARES a write conflict on the
///    index key (Transaction::AddWriteConflictKey) — so a concurrent
///    pointer deletion, which reads that key, aborts.
///  - If the FDB transaction ultimately fails, the externally written item
///    is garbage-collected (best effort; an orphan can only resurrect if
///    the pointer is later re-created, and all §6.1 use-cases are
///    idempotent).
///  - The consumer obtains the pointer lease in FDB (a longer lease stands
///    in for per-item leases the external store cannot provide), STRONG-
///    reads the external queue, executes and deletes items, and deletes the
///    pointer only inside a transaction that re-reads the index key and
///    re-checks external emptiness with a strong read.
///
/// External queues use their own top-level queue zone (a second Q_C shard,
/// as §6 permits) so the regular FDB-zone consumers never race on these
/// pointers.
class ExternalQueue {
 public:
  struct Options {
    /// Zone name of the external top-level queue shard in each ClusterDB.
    std::string top_zone_name = "_quick_q_ext";
    /// Pointer lease duration; covers item processing since items carry no
    /// leases of their own.
    int64_t pointer_lease_millis = 10000;
    /// Items processed per pointer visit.
    int max_items_per_visit = 8;
    /// Pointer GC grace, as for FDB-backed queues.
    int64_t min_inactive_millis = 60000;
    /// Use weak external reads in the consumer (deliberately wrong; exists
    /// so tests can demonstrate the §6.1 strong-read requirement).
    bool strong_reads = true;
  };

  ExternalQueue(ck::CloudKitService* cloudkit, ExternalStore* store,
                core::JobRegistry* registry);
  ExternalQueue(ck::CloudKitService* cloudkit, ExternalStore* store,
                core::JobRegistry* registry, Options options);

  /// §6.1 enqueue for tenant `db_id`. Returns the item id.
  Result<std::string> Enqueue(const ck::DatabaseId& db_id,
                              const std::string& job_type,
                              const std::string& payload);

  /// One consumer pass over a cluster's external top-level queue:
  /// processes up to `max_pointers` vested pointers. Returns the number of
  /// pointers visited.
  Result<int> RunOnePass(const std::string& cluster_name,
                         int max_pointers = 100);

  ExternalStats& stats() { return stats_; }

  /// The external-store queue key for a tenant.
  std::string QueueKey(const ck::DatabaseId& db_id) const {
    return db_id.ToKeyString();
  }

 private:
  Status ProcessPointer(const std::string& cluster_name,
                        const ck::QueuedItem& pointer_item);

  ck::QueueZone OpenTopZone(const ck::DatabaseRef& cluster_db,
                            fdb::Transaction* txn) {
    return ck::QueueZone(txn, cluster_db.ZoneSubspace(options_.top_zone_name),
                         cloudkit_->clock());
  }

  ck::CloudKitService* cloudkit_;
  ExternalStore* store_;
  core::JobRegistry* registry_;
  Options options_;
  ExternalStats stats_;
};

}  // namespace quick::ext

#endif  // QUICK_EXTERNAL_EXTERNAL_QUEUE_H_
