#include "external/external_store.h"

#include <algorithm>

#include "common/random.h"

namespace quick::ext {

Status SimExternalStore::Put(const std::string& queue_key,
                             const ExternalItem& item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.put_failure_probability > 0) {
    // Deterministic-ish roll sequence guarded by the store mutex.
    ++put_rolls_;
    Random roll(put_rolls_ * 0x9E3779B97F4A7C15ULL);
    if (roll.NextDouble() < options_.put_failure_probability) {
      return Status::Unavailable("simulated external-store write failure");
    }
  }
  Versioned v;
  v.item = item;
  v.write_time = options_.clock->NowMillis();
  queues_[queue_key][item.id] = std::move(v);
  return Status::OK();
}

Result<std::vector<ExternalItem>> SimExternalStore::List(
    const std::string& queue_key, int limit, bool strong) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = options_.clock->NowMillis();
  const int64_t read_time =
      strong ? now : now - options_.replication_lag_millis;
  std::vector<ExternalItem> out;
  auto it = queues_.find(queue_key);
  if (it == queues_.end()) return out;
  // Oldest first by enqueue time, then id.
  std::vector<const Versioned*> visible;
  for (const auto& [id, v] : it->second) {
    if (VisibleAt(v, read_time)) visible.push_back(&v);
  }
  std::sort(visible.begin(), visible.end(),
            [](const Versioned* a, const Versioned* b) {
              if (a->item.enqueue_time != b->item.enqueue_time) {
                return a->item.enqueue_time < b->item.enqueue_time;
              }
              return a->item.id < b->item.id;
            });
  for (const Versioned* v : visible) {
    out.push_back(v->item);
    if (limit > 0 && static_cast<int>(out.size()) >= limit) break;
  }
  return out;
}

Status SimExternalStore::Delete(const std::string& queue_key,
                                const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto qit = queues_.find(queue_key);
  if (qit == queues_.end()) return Status::NotFound("queue " + queue_key);
  auto it = qit->second.find(id);
  if (it == qit->second.end() ||
      it->second.delete_time != INT64_MAX) {
    return Status::NotFound("item " + id);
  }
  it->second.delete_time = options_.clock->NowMillis();
  return Status::OK();
}

Result<bool> SimExternalStore::IsEmpty(const std::string& queue_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = options_.clock->NowMillis();
  auto it = queues_.find(queue_key);
  if (it == queues_.end()) return true;
  for (const auto& [id, v] : it->second) {
    if (VisibleAt(v, now)) return false;
  }
  return true;
}

size_t SimExternalStore::TotalItems() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = options_.clock->NowMillis();
  size_t n = 0;
  for (const auto& [key, queue] : queues_) {
    for (const auto& [id, v] : queue) {
      if (VisibleAt(v, now)) ++n;
    }
  }
  return n;
}

}  // namespace quick::ext
