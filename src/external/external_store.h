#ifndef QUICK_EXTERNAL_EXTERNAL_STORE_H_
#define QUICK_EXTERNAL_EXTERNAL_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace quick::ext {

/// A work item stored outside FoundationDB.
struct ExternalItem {
  std::string id;
  std::string job_type;
  std::string payload;
  int64_t enqueue_time = 0;
};

/// Abstraction of a non-FoundationDB data store holding work items (§6.1):
/// think Cassandra — no cross-keyspace transactions, no secondary indexes,
/// possibly weak reads. QuiCK keeps the top-level queue and pointer index
/// in FoundationDB and stores only the items here.
class ExternalStore {
 public:
  virtual ~ExternalStore() = default;

  virtual Status Put(const std::string& queue_key,
                     const ExternalItem& item) = 0;

  /// Items of a queue, oldest first. `strong` demands read-your-writes
  /// visibility of every committed Put — the §6.1 requirement for the
  /// consumer path ("the external data-store read must be a strong read",
  /// or pointers may be deleted while items exist). Weak reads may lag.
  virtual Result<std::vector<ExternalItem>> List(const std::string& queue_key,
                                                 int limit, bool strong) = 0;

  virtual Status Delete(const std::string& queue_key,
                        const std::string& id) = 0;

  /// Strong emptiness check.
  virtual Result<bool> IsEmpty(const std::string& queue_key) = 0;
};

/// In-memory simulated external store with configurable replication lag:
/// weak reads observe the state as of `lag_millis` ago, modelling an
/// eventually-consistent replica. Thread-safe.
class SimExternalStore : public ExternalStore {
 public:
  struct Options {
    Clock* clock = SystemClock::Default();
    /// Weak reads lag writes by this much; 0 makes weak == strong.
    int64_t replication_lag_millis = 0;
    /// Probability a Put fails transiently (for enqueue-GC tests).
    double put_failure_probability = 0.0;
  };

  SimExternalStore() : SimExternalStore(Options{}) {}
  explicit SimExternalStore(const Options& options) : options_(options) {}

  Status Put(const std::string& queue_key, const ExternalItem& item) override;
  Result<std::vector<ExternalItem>> List(const std::string& queue_key,
                                         int limit, bool strong) override;
  Status Delete(const std::string& queue_key, const std::string& id) override;
  Result<bool> IsEmpty(const std::string& queue_key) override;

  /// Total items across queues (diagnostics).
  size_t TotalItems() const;

 private:
  struct Versioned {
    ExternalItem item;
    int64_t write_time;
    int64_t delete_time = INT64_MAX;  // tombstone time, if deleted
  };

  bool VisibleAt(const Versioned& v, int64_t time) const {
    return v.write_time <= time && time < v.delete_time;
  }

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, Versioned>> queues_;
  uint64_t put_rolls_ = 0;
};

}  // namespace quick::ext

#endif  // QUICK_EXTERNAL_EXTERNAL_STORE_H_
