#include "external/outbox_relay.h"

#include "fdb/retry.h"

namespace quick::ext {

Result<bool> SimEffectStore::Apply(const std::string& target,
                                   const std::string& idempotency_key,
                                   const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = applications_.try_emplace(idempotency_key, 0);
  if (!inserted) {
    ++duplicate_attempts_;
    return false;
  }
  ++it->second;
  payloads_[idempotency_key] = target + "|" + payload;
  return true;
}

int64_t SimEffectStore::MaxApplications() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t max = 0;
  for (const auto& [key, n] : applications_) max = std::max(max, n);
  return max;
}

int64_t SimEffectStore::TotalApplied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(applications_.size());
}

int64_t SimEffectStore::DuplicateAttempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicate_attempts_;
}

std::string SimEffectStore::PayloadFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = payloads_.find(key);
  return it == payloads_.end() ? std::string() : it->second;
}

OutboxRelay::OutboxRelay(ck::CloudKitService* cloudkit, EffectStore* store)
    : OutboxRelay(cloudkit, store, Options{}) {}

OutboxRelay::OutboxRelay(ck::CloudKitService* cloudkit, EffectStore* store,
                         Options options)
    : cloudkit_(cloudkit),
      store_(store),
      options_(options),
      hooks_(options.tracer != nullptr ? options.tracer : Tracer::Default(),
             cloudkit->clock(), "outbox-relay") {}

Result<int> OutboxRelay::RunOnePass(const std::string& cluster_name) {
  fdb::Database* cluster = cloudkit_->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }

  // Strong read of a batch of pending rows. The scan is its own
  // transaction; each ack is another — the protocol tolerates any
  // interleaving with finish transactions appending new rows.
  std::vector<ck::OutboxEntry> entries;
  {
    fdb::Transaction txn = cluster->CreateTransaction();
    QUICK_ASSIGN_OR_RETURN(
        entries, ck::Outbox::List(txn, cluster_name, options_.batch_limit));
  }

  int visited = 0;
  for (const ck::OutboxEntry& e : entries) {
    const int64_t start = hooks_.NowMicros();
    Result<bool> applied =
        store_->Apply(e.target, e.idempotency_key, e.payload);
    if (!applied.ok()) {
      // Store unavailable: leave the row; a later pass retries the attempt.
      stats_.apply_failures.Increment();
      continue;
    }
    if (*applied) {
      stats_.effects_applied.Increment();
    } else {
      stats_.effects_deduped.Increment();
    }
    ++visited;
    hooks_.Record(e.origin_item, core::stage::kOutboxRelay, start,
                  hooks_.NowMicros(),
                  "target=" + e.target + " key=" + e.idempotency_key +
                      (*applied ? " applied" : " deduped"));
    if (!options_.ack_enabled) continue;  // chaos: crash before any ack

    // Ack: conflict-checked delete of the row. A NotFound means a racing
    // relay acknowledged first — its Apply was deduped by the store, so
    // the effect still happened exactly once.
    bool conflict = false;
    Status ack = fdb::RunTransaction(cluster, [&](fdb::Transaction& txn) {
      Status a = ck::Outbox::Ack(txn, cluster_name, e.idempotency_key);
      if (a.IsNotFound()) {
        conflict = true;
        return Status::OK();
      }
      conflict = false;
      return a;
    });
    QUICK_RETURN_IF_ERROR(ack);
    if (conflict) {
      stats_.ack_conflicts.Increment();
    } else {
      stats_.rows_acked.Increment();
    }
  }
  return visited;
}

Result<int64_t> OutboxRelay::Lag(const std::string& cluster_name) {
  fdb::Database* cluster = cloudkit_->clusters()->Get(cluster_name);
  if (cluster == nullptr) {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  fdb::Transaction txn = cluster->CreateTransaction();
  return ck::Outbox::Count(txn, cluster_name);
}

}  // namespace quick::ext
