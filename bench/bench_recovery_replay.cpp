// Durability-path benchmarks: what the WAL costs on the ack path, and what
// cold-start recovery costs with and without a checkpoint in front of the
// log tail. Not a paper figure — the paper's CloudKit substrate is durable
// by construction; this pins the simulator's own durability overheads.
//
// Counter naming is deliberate: only the in-memory `commits_per_sec` of
// the wal_off run uses a baseline-gated THROUGHPUT_KEYS name. Everything
// fsync-bound (`ack_commits_per_sec`, `replay_records_per_sec`,
// `coldstart_per_sec`) varies with the CI host's disk and is reported
// ungated, for trend-watching rather than thresholds.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "bench_report.h"

#include "common/histogram.h"
#include "fdb/database.h"

namespace quick {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("quick_bench_recovery_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

fdb::Database::Options WalOptions(const std::string& dir) {
  fdb::Database::Options opts;
  opts.durability.enable_wal = true;
  opts.durability.dir = dir;
  // Manual checkpoints only: the benches control exactly what recovery
  // has to replay.
  opts.durability.checkpoint_interval_bytes = 0;
  return opts;
}

// Single-writer acked-commit path, WAL off vs on. The delta is the whole
// durability tax: framing, CRC, the write syscall, and the fsync before
// the ack (invariant 15 — no ack before fsync).
void BM_AckedCommit(benchmark::State& state) {
  const bool wal = state.range(0) != 0;
  const std::string dir = FreshDir(wal ? "ack_on" : "ack_off");
  fdb::Database::Options opts;
  if (wal) opts = WalOptions(dir);
  fdb::Database db("bench", opts);

  Histogram ack_micros;
  int64_t i = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const auto c0 = std::chrono::steady_clock::now();
    fdb::Transaction txn = db.CreateTransaction();
    txn.Set("key" + std::to_string(i % 512), "payload-" + std::to_string(i));
    benchmark::DoNotOptimize(txn.Commit());
    ack_micros.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - c0)
                          .count());
    ++i;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const fdb::Database::Stats stats = db.GetStats();
  state.SetItemsProcessed(state.iterations());
  state.counters["wal"] = wal ? 1 : 0;
  const double per_sec = static_cast<double>(state.iterations()) / secs;
  if (wal) {
    // fsync-bound: ungated name.
    state.counters["ack_commits_per_sec"] = per_sec;
    state.counters["wal_appended_bytes"] =
        static_cast<double>(stats.wal_appended_bytes);
    state.counters["syncs_per_commit"] =
        state.iterations() > 0
            ? static_cast<double>(stats.wal_syncs) / state.iterations()
            : 0.0;
  } else {
    // Pure in-memory commit path: stable enough to gate against baseline.
    state.counters["commits_per_sec"] = per_sec;
  }
  bench::BenchReportCollector::Global()->ReportRun(
      std::string("BM_AckedCommit/") + (wal ? "wal_on" : "wal_off"), state,
      {{"ack_us", &ack_micros}});
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AckedCommit)
    ->ArgNames({"wal"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Cold-start cost: construct a Database over a populated durability
// directory. log_only replays the full WAL; checkpoint_tail loads the
// snapshot and replays only the commits after it (the recovery protocol's
// whole point).
void BM_ColdStartReplay(benchmark::State& state) {
  const bool checkpointed = state.range(0) != 0;
  constexpr int kCommits = 600;
  constexpr int kTail = 120;  // commits after the checkpoint
  const std::string dir =
      FreshDir(checkpointed ? "cold_ckpt" : "cold_log");
  {
    fdb::Database db("bench", WalOptions(dir));
    for (int i = 0; i < kCommits; ++i) {
      if (checkpointed && i == kCommits - kTail) {
        benchmark::DoNotOptimize(db.Checkpoint());
      }
      fdb::Transaction txn = db.CreateTransaction();
      txn.Set("key" + std::to_string(i % 200), "payload-" + std::to_string(i));
      (void)txn.Commit();
    }
  }

  fdb::RecoveryInfo last_info;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    fdb::Database db("bench", WalOptions(dir));
    last_info = db.GetRecoveryInfo();
    benchmark::DoNotOptimize(last_info.last_durable_version);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  state.SetItemsProcessed(state.iterations() * last_info.replayed_records);
  state.counters["checkpointed"] = checkpointed ? 1 : 0;
  state.counters["replayed_records"] =
      static_cast<double>(last_info.replayed_records);
  state.counters["checkpoint_version"] =
      static_cast<double>(last_info.checkpoint_version);
  state.counters["last_durable_version"] =
      static_cast<double>(last_info.last_durable_version);
  // Disk-bound: ungated names.
  state.counters["coldstart_per_sec"] =
      static_cast<double>(state.iterations()) / secs;
  state.counters["replay_records_per_sec"] =
      static_cast<double>(state.iterations() * last_info.replayed_records) /
      secs;
  bench::BenchReportCollector::Global()->ReportRun(
      std::string("BM_ColdStartReplay/") +
          (checkpointed ? "checkpoint_tail" : "log_only"),
      state);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ColdStartReplay)
    ->ArgNames({"ckpt"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick

QUICK_BENCH_MAIN("recovery_replay")
