// Figure 7 companion: throughput of the async pipelined consumer core
// (DESIGN.md §11) against the synchronous thread-per-transaction pipeline,
// on an in-flight-window axis at a fixed total thread budget.
//
// One consumer drains a prefilled backlog of single-item tenant queues
// under the fig7 latency model (2 ms commits, 0.5 ms GRV). The w=0 point
// is the synchronous pipeline (scanner + 2 managers + 8 workers + extender
// = 12 threads); w>0 points run the async state machine with a window of w
// in-flight transaction chains and the same 12-thread budget (scanner + 4
// executor + 6 workers + extender). Every lease/dequeue/finish commit in
// async mode rides the cluster's group-commit pipeline instead of parking
// a thread for the commit RTT, so throughput should scale with the window
// until the worker pool saturates — the per-stage histograms in the report
// pin where the remaining time goes.
//
// compare_bench.py gates BM_Fig7_Async/w256 >= 10x BM_Fig7_Async/w0 on
// throughput_items_per_sec (the ISSUE acceptance bar).

#include "bench_common.h"

namespace quick::bench {
namespace {

void BM_Fig7_Async(benchmark::State& state) {
  QuietLogs();
  const int window = static_cast<int>(state.range(0));

  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 1;
  hopts.pointer_vesting_slack_millis = 0;
  // The fig7 latency model with commits priced as cross-zone replicated
  // writes (QuiCK commits ride CloudKit's multi-zone Paxos; reads hit the
  // local replica). Commit RTTs dominate every transaction, which is
  // exactly what the async window is built to overlap: the synchronous
  // pipeline parks a thread for each 20 ms commit, the async pipeline
  // keeps hundreds of them in the group-commit pump at once.
  hopts.latency.grv_micros = 500;
  hopts.latency.grv_causal_read_risky_micros = 100;
  hopts.latency.read_micros = 100;
  hopts.latency.commit_micros = 20000;
  hopts.grv_cache_staleness_millis = 5;
  wl::Harness harness(hopts);

  // Prefill a backlog large enough that neither arm runs dry inside the
  // measurement window (latencies zeroed during the fill, restored after).
  constexpr int kClients = 3000;
  constexpr int kItemsPerClient = 5;
  fdb::Database* cluster = harness.clusters()->Get(harness.cluster_names()[0]);
  cluster->set_latency(fdb::LatencyModel{});
  for (int c = 0; c < kClients; ++c) {
    Status st = harness.EnqueueSim(c, kItemsPerClient);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  cluster->set_latency(hopts.latency);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.sequential = true;
  config.dequeue_max = 4;
  config.processing_bound = 100000;
  // Leases must outlive a pipelined chain's full latency (several 20 ms
  // commits plus executor queueing at deep windows); both arms get the
  // same generous leases so expiry churn never pollutes the comparison.
  config.pointer_lease_millis = 10000;
  config.item_lease_millis = 20000;
  if (window == 0) {
    // Synchronous pipeline: 1 scanner + 2 managers + 8 workers + 1
    // extender = 12 threads, each lease/dequeue/finish commit blocking its
    // thread for the full RTT.
    config.async_pipeline = false;
    config.num_manager_threads = 2;
    config.num_worker_threads = 8;
  } else {
    // Same 12-thread budget: 1 scanner + 4 executor + 6 workers + 1
    // extender, with `window` transaction chains in flight.
    config.async_pipeline = true;
    config.max_inflight_txns = window;
    config.lease_batch_size = 8;
    config.async_executor_threads = 4;
    config.num_worker_threads = 6;
  }

  for (auto _ : state) {
    auto consumer = harness.MakeConsumer(
        config, "fig7-async-w" + std::to_string(window));
    consumer->Start();
    SleepMs(300);  // warmup: window fills, batches form
    const int64_t before = harness.WorkExecuted();
    const fdb::Database::Stats fdb_before = cluster->GetStats();
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(2500);
    const int64_t after = harness.WorkExecuted();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const fdb::Database::Stats fdb_after = cluster->GetStats();
    core::ConsumerStats& stats = consumer->stats();

    const int64_t window_commits =
        fdb_after.commits_succeeded - fdb_before.commits_succeeded;
    const int64_t window_batches =
        fdb_after.commit_batches - fdb_before.commit_batches;
    state.counters["window"] = window;
    state.counters["throughput_items_per_sec"] = (after - before) / secs;
    state.counters["commits_per_sec"] = window_commits / secs;
    state.counters["avg_batch_size"] =
        window_batches > 0
            ? static_cast<double>(window_commits) / window_batches
            : 0.0;
    state.counters["lease_batches"] =
        static_cast<double>(stats.lease_batches.Value());
    state.counters["lease_batch_fallbacks"] =
        static_cast<double>(stats.lease_batch_fallbacks.Value());
    state.counters["backpressure_waits"] =
        static_cast<double>(stats.backpressure_waits.Value());
    state.counters["pointer_p50_ms"] =
        stats.pointer_latency_micros.Percentile(0.50) / 1000.0;
    // Per-stage latency series: with overlapping enabled the wall-clock
    // drain rate rises while each stage's own latency stays commit-bound —
    // the signature of overlapped RTTs rather than faster transactions.
    BenchReportCollector::Global()->ReportRun(
        "BM_Fig7_Async/w" + std::to_string(window), state,
        {{"scan_us", &stats.scan_micros},
         {"lease_txn_us", &stats.lease_txn_micros},
         {"dequeue_txn_us", &stats.dequeue_txn_micros},
         {"finish_txn_us", &stats.finish_txn_micros},
         {"pointer_latency_us", &stats.pointer_latency_micros},
         {"item_latency_us", &stats.item_latency_micros}});
    consumer->Stop();
  }
}

BENCHMARK(BM_Fig7_Async)
    // In-flight window: 0 = synchronous baseline pipeline; 16/64/256 =
    // async window sizes at the same 12-thread budget.
    ->ArgNames({"w"})
    ->Args({0})
    ->Args({16})
    ->Args({64})
    ->Args({256})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("fig7_async")
