// Control-plane ablation: a noisy tenant floods the cluster while a
// polite victim tenant enqueues at a steady low rate. Measured with the
// admission controller off and on:
//
//  - off: the noisy backlog grows without bound and every consumer pass
//    dispatches large noisy batches ahead of the victim's items — victim
//    tail latency blows up;
//  - on: the per-tenant token bucket caps the noisy tenant at its rate
//    (the producer honors the retry-after hint), the backlog stays small,
//    and the victim's latency stays near the uncontended floor.
//
// compare_bench.py asserts victim_p99_ms(off) / victim_p99_ms(on) >= 2.0
// as a machine-independent ratio invariant.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "control/admission.h"
#include "quick/admission_gate.h"

namespace quick::bench {
namespace {

constexpr const char* kJobType = "nn_work";
constexpr int64_t kServiceMillis = 2;
constexpr int kWarmupMillis = 1000;
constexpr int kMeasureMillis = 3000;

void RunNoisyNeighbor(benchmark::State& state, bool admission_on) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  wl::Harness harness(hopts);
  core::Quick* quick = harness.quick();
  Clock* clock = quick->clock();

  // Per-tenant latency histograms, fed by the handler from the enqueue
  // timestamp carried in the payload ("v|<micros>" / "n|<micros>").
  Histogram victim_lat_us;
  Histogram noisy_lat_us;
  harness.registry()->Register(kJobType, [&](core::WorkContext& ctx) {
    const int64_t enq =
        std::strtoll(ctx.item.payload.c_str() + 2, nullptr, 10);
    const int64_t lat = clock->NowMicros() - enq;
    (ctx.item.payload[0] == 'v' ? victim_lat_us : noisy_lat_us).Record(lat);
    SleepMs(kServiceMillis);
    return Status::OK();
  });

  // Per-tenant cap well above the victim's rate; app/cluster unlimited so
  // the isolation measured is purely tenant-level.
  std::unique_ptr<control::AdmissionController> gate;
  if (admission_on) {
    control::AdmissionConfig aconfig;
    aconfig.tenant = {300, 60};
    aconfig.app = {0, 0};
    aconfig.cluster = {0, 0};
    gate = std::make_unique<control::AdmissionController>(aconfig, clock);
    quick->set_admission(gate.get());
  }

  const ck::DatabaseId victim = ck::DatabaseId::Private("bench", "victim");
  const ck::DatabaseId noisy = ck::DatabaseId::Private("bench", "noisy");
  std::atomic<bool> stop{false};
  std::atomic<int64_t> victim_sent{0};
  std::atomic<int64_t> noisy_sent{0};
  std::atomic<int64_t> noisy_throttled{0};

  auto enqueue = [&](const ck::DatabaseId& db, char tag) {
    core::WorkItem item;
    item.job_type = kJobType;
    item.payload = std::string(1, tag) + "|" +
                   std::to_string(clock->NowMicros());
    return quick->Enqueue(db, item, 0).status();
  };

  // The victim: one item every 5 ms (~200/s, under the tenant cap).
  std::thread victim_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (enqueue(victim, 'v').ok()) victim_sent.fetch_add(1);
      SleepMs(5);
    }
  });
  // The noisy neighbor: bursts far beyond consumer capacity, backing off
  // only as told to (the retry-after hint) when admission is on.
  std::thread noisy_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      int64_t wait_millis = 0;
      for (int i = 0; i < 50 && wait_millis == 0; ++i) {
        const Status st = enqueue(noisy, 'n');
        if (st.ok()) {
          noisy_sent.fetch_add(1);
        } else if (st.IsThrottled()) {
          noisy_throttled.fetch_add(1);
          wait_millis = std::min<int64_t>(core::RetryAfterMillis(st), 50);
        }
      }
      SleepMs(wait_millis > 0 ? wait_millis : 5);
    }
  });

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 256;

  for (auto _ : state) {
    auto consumer = harness.MakeConsumer(config, "nn-consumer");
    consumer->Start();
    SleepMs(kWarmupMillis);
    victim_lat_us.Reset();
    noisy_lat_us.Reset();
    SleepMs(kMeasureMillis);

    const char* run = admission_on ? "admission_on" : "admission_off";
    state.counters["victim_p50_ms"] =
        victim_lat_us.Percentile(0.50) / 1000.0;
    state.counters["victim_p99_ms"] =
        victim_lat_us.Percentile(0.99) / 1000.0;
    state.counters["victim_executed"] =
        static_cast<double>(victim_lat_us.Count());
    state.counters["noisy_executed"] =
        static_cast<double>(noisy_lat_us.Count());
    state.counters["noisy_enqueued"] =
        static_cast<double>(noisy_sent.load());
    state.counters["noisy_throttled_total"] =
        static_cast<double>(noisy_throttled.load());
    BenchReportCollector::Global()->ReportRun(
        std::string("BM_NoisyNeighbor/") + run, state,
        {{"victim_latency_us", &victim_lat_us},
         {"noisy_latency_us", &noisy_lat_us}});
    consumer->Stop();
  }
  stop.store(true);
  victim_thread.join();
  noisy_thread.join();
}

void BM_NoisyNeighbor_AdmissionOff(benchmark::State& state) {
  RunNoisyNeighbor(state, /*admission_on=*/false);
}

void BM_NoisyNeighbor_AdmissionOn(benchmark::State& state) {
  RunNoisyNeighbor(state, /*admission_on=*/true);
}

BENCHMARK(BM_NoisyNeighbor_AdmissionOff)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_NoisyNeighbor_AdmissionOn)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("admission_noisy_neighbor")
