// Figure 7: the effect of selection_frac on (a) pointer latency (median
// and tail), (b) failures to obtain a pointer lease as % of attempts,
// split into read-detected vs commit-detected collisions, and (c) maximum
// throughput. Four consumers, uniform load, 1 item per enqueue, random
// pointer selection (no elected sequential scanner — contention is the
// subject here).
//
// Expected shape (paper §8): tiny fractions (0.001) give almost no
// collisions but extreme latency and low throughput; larger fractions
// raise the collision rate until selection_max flattens it, while
// throughput stabilizes from ~0.005 on.

#include "bench_common.h"

namespace quick::bench {
namespace {

void BM_Fig7_SelectionFrac(benchmark::State& state) {
  QuietLogs();
  // selection_frac passed scaled by 1e4 through the integer arg; second
  // arg toggles group commit so the commit-path batching win shows up as
  // end-to-end throughput on the same contended shape.
  const double selection_frac = state.range(0) / 10000.0;
  const bool group_commit = state.range(1) != 0;

  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 1;
  hopts.enable_group_commit = group_commit;
  // Modest injected FDB latencies: without them, lease transactions finish
  // so fast that racing consumers almost never overlap and the collision
  // signal the paper measures disappears.
  hopts.latency.grv_micros = 500;
  hopts.latency.grv_causal_read_risky_micros = 100;
  hopts.latency.read_micros = 100;
  hopts.latency.commit_micros = 2000;
  // Tight version-cache staleness: peek views are near-fresh, so the
  // collision rate is driven by batch size (selection_frac), as in the
  // paper, rather than by a uniform staleness floor.
  hopts.grv_cache_staleness_millis = 5;
  wl::Harness harness(hopts);

  // Many queues relative to consumer capacity, as in the paper (150K
  // queues vs a handful of consumers): the vested-pointer set stays large,
  // so collision probability is governed by how many pointers each scanner
  // selects per peek — i.e. by selection_frac.
  constexpr int kClients = 2000;
  wl::LoadOptions lopts;
  lopts.num_clients = kClients;
  lopts.rate_per_client_hz = 1.0;  // ~2000 items/s offered: overload
  lopts.items_per_enqueue = 1;
  lopts.num_threads = 16;
  wl::OpenLoopGenerator feeder(&harness, lopts);
  feeder.Start();

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 1;
  config.selection_frac = selection_frac;
  config.selection_max = 200;  // scaled selection_max (paper: 2000)
  config.sequential = false;

  for (auto _ : state) {
    // Plain consumers without the election cache: all randomized.
    std::vector<std::unique_ptr<core::Consumer>> consumers;
    for (int i = 0; i < 4; ++i) {
      consumers.push_back(std::make_unique<core::Consumer>(
          harness.quick(), harness.cluster_names(), harness.registry(),
          config, "fig7-consumer-" + std::to_string(i)));
      consumers.back()->Start();
    }
    SleepMs(500);
    const int64_t before = harness.WorkExecuted();
    for (auto& c : consumers) {
      c->stats().pointer_latency_micros.Reset();
      c->stats().pointer_lease_attempts.Reset();
      c->stats().lease_collisions_read.Reset();
      c->stats().lease_collisions_commit.Reset();
    }
    fdb::Database* cluster =
        harness.clusters()->Get(harness.cluster_names()[0]);
    const fdb::Database::Stats fdb_before = cluster->GetStats();
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(2500);
    const int64_t after = harness.WorkExecuted();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const fdb::Database::Stats fdb_after = cluster->GetStats();
    PoolStats stats;
    Collect(consumers, &stats);
    StopConsumers(consumers);

    const double attempts =
        std::max<double>(1.0, static_cast<double>(stats.lease_attempts));
    const int64_t window_commits =
        fdb_after.commits_succeeded - fdb_before.commits_succeeded;
    const int64_t window_batches =
        fdb_after.commit_batches - fdb_before.commit_batches;
    state.counters["selection_frac"] = selection_frac;
    state.counters["group_commit"] = group_commit ? 1 : 0;
    state.counters["commits_per_sec"] = window_commits / secs;
    state.counters["commit_conflicts_per_sec"] =
        (fdb_after.conflicts - fdb_before.conflicts) / secs;
    state.counters["avg_batch_size"] =
        window_batches > 0
            ? static_cast<double>(window_commits) / window_batches
            : 0.0;
    state.counters["pointer_p50_ms"] =
        stats.pointer_latency_micros.Percentile(0.50) / 1000.0;
    state.counters["pointer_p999_ms"] =
        stats.pointer_latency_micros.Percentile(0.999) / 1000.0;
    state.counters["collision_pct_total"] =
        100.0 * (stats.collisions_read + stats.collisions_commit) / attempts;
    state.counters["collision_pct_read"] =
        100.0 * stats.collisions_read / attempts;
    state.counters["collision_pct_commit"] =
        100.0 * stats.collisions_commit / attempts;
    state.counters["throughput_items_per_sec"] = (after - before) / secs;
    BenchReportCollector::Global()->ReportRun(
        "BM_Fig7_SelectionFrac/" + std::to_string(state.range(0)) +
            (group_commit ? "/group" : "/single"),
        state,
        {{"pointer_latency_us", &stats.pointer_latency_micros},
         {"item_latency_us", &stats.item_latency_micros}});
  }
  feeder.Stop();
}

BENCHMARK(BM_Fig7_SelectionFrac)
    // selection_frac 0.001, 0.005, 0.01, 0.05, 0.1, 0.5 (scaled by 1e4),
    // each with group commit off (0) and on (1). The CI smoke shape
    // (--benchmark_filter='/500/') runs both commit modes at 0.05.
    ->ArgNames({"frac", "group"})
    ->ArgsProduct({{10, 50, 100, 500, 1000, 5000}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("fig7_contention")
