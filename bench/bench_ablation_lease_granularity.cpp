// Ablation A1 — lease granularity: QuiCK's coarse queue-level (pointer)
// leases vs per-item leases where consumers race to lease individual work
// items (the ATF-style baseline of §7). With few hot queues and several
// consumers, item-level leasing makes consumers collide on the same item
// records at commit time; queue-level leasing resolves contention once per
// queue visit.

#include "bench_common.h"

namespace quick::bench {
namespace {

void RunGranularity(benchmark::State& state, bool item_level) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 1;
  wl::Harness harness(hopts);

  // Few hot queues: contention is the point.
  constexpr int kClients = 8;
  wl::SaturationFeeder feeder(&harness, kClients, /*items_per_enqueue=*/4,
                              /*num_threads=*/2);
  feeder.Start(/*backlog_target_per_client=*/8);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 4;
  config.sequential = false;
  config.selection_frac = 0.5;  // consumers overlap on purpose
  config.item_level_leases_only = item_level;

  for (auto _ : state) {
    std::vector<std::unique_ptr<core::Consumer>> consumers;
    for (int i = 0; i < 4; ++i) {
      consumers.push_back(std::make_unique<core::Consumer>(
          harness.quick(), harness.cluster_names(), harness.registry(),
          config, "a1-consumer-" + std::to_string(i)));
      consumers.back()->Start();
    }
    SleepMs(500);
    const int64_t before = harness.WorkExecuted();
    fdb::Database::Stats db_before =
        harness.cloudkit()->clusters()->Get("cluster0")->GetStats();
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(2000);
    const int64_t after = harness.WorkExecuted();
    fdb::Database::Stats db_after =
        harness.cloudkit()->clusters()->Get("cluster0")->GetStats();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    PoolStats stats;
    Collect(consumers, &stats);
    StopConsumers(consumers);

    state.counters["throughput_items_per_sec"] = (after - before) / secs;
    state.counters["fdb_conflicts"] =
        static_cast<double>(db_after.conflicts - db_before.conflicts);
    state.counters["collisions_read"] =
        static_cast<double>(stats.collisions_read);
    state.counters["collisions_commit"] =
        static_cast<double>(stats.collisions_commit);
    BenchReportCollector::Global()->ReportRun(
        item_level ? "BM_A1_ItemLevelLeases" : "BM_A1_QueueLevelLeases",
        state);
  }
  feeder.Stop();
}

void BM_A1_QueueLevelLeases(benchmark::State& state) {
  RunGranularity(state, /*item_level=*/false);
}

void BM_A1_ItemLevelLeases(benchmark::State& state) {
  RunGranularity(state, /*item_level=*/true);
}

BENCHMARK(BM_A1_QueueLevelLeases)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_A1_ItemLevelLeases)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_lease_granularity")
