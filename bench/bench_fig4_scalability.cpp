// Figure 4: saturation throughput vs number of consumers, for 1/2/4 tasks
// per enqueue. Expected shape (paper §8): throughput scales ~linearly with
// consumers, and more tasks per enqueue yields higher throughput because
// the pointer-lease cost is amortized over the dequeued batch (dequeue_max
// equals tasks per enqueue, as in the paper).
//
// Methodology: a large backlog is pre-filled across many tenant queues at
// full simulator speed, then realistic FDB latencies are switched on and
// the consumer pool drains the backlog for a fixed window — so consumers,
// not the load generator, are what saturates.

#include "bench_common.h"

#include <thread>

namespace quick::bench {
namespace {

constexpr int kClients = 2000;
constexpr int kEnqueuesPerClient = 30;

void Prefill(wl::Harness* harness, int tasks_per_enqueue) {
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([=] {
      for (int c = t; c < kClients; c += kThreads) {
        for (int i = 0; i < kEnqueuesPerClient; ++i) {
          (void)harness->EnqueueSim(c, tasks_per_enqueue);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

void BM_Fig4_SaturationThroughput(benchmark::State& state) {
  QuietLogs();
  const int num_consumers = static_cast<int>(state.range(0));
  const int tasks_per_enqueue = static_cast<int>(state.range(1));

  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 2;  // scaled-down ~50ms async work
  wl::Harness harness(hopts);

  // Pre-fill the backlog with latency injection off, then enable a modest
  // latency model so per-visit costs are realistic.
  Prefill(&harness, tasks_per_enqueue);
  fdb::LatencyModel latency;
  latency.grv_micros = 300;
  latency.grv_causal_read_risky_micros = 100;
  latency.read_micros = 50;
  latency.commit_micros = 1000;
  harness.cloudkit()->clusters()->Get("cluster0")->set_latency(latency);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = tasks_per_enqueue;
  config.selection_max = 200;

  for (auto _ : state) {
    auto consumers = StartConsumers(&harness, num_consumers, config);
    SleepMs(500);  // warm up
    const int64_t before = harness.WorkExecuted();
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(2500);
    const int64_t after = harness.WorkExecuted();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    StopConsumers(consumers);
    state.counters["items_per_sec"] = (after - before) / secs;
    state.counters["consumers"] = num_consumers;
    state.counters["tasks_per_enqueue"] = tasks_per_enqueue;
    state.counters["backlog_left"] = static_cast<double>(
        kClients * kEnqueuesPerClient * tasks_per_enqueue -
        harness.WorkExecuted());
    BenchReportCollector::Global()->ReportRun(
        "BM_Fig4_SaturationThroughput/" + std::to_string(num_consumers) +
            "/" + std::to_string(tasks_per_enqueue),
        state);
  }
}

BENCHMARK(BM_Fig4_SaturationThroughput)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {1, 2, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("fig4_scalability")
