// Sharded Q_C scale-out (DESIGN.md §12): drain throughput over a Zipf-
// skewed many-tenant backlog, swept over top_zone_shards ∈ {1, 4, 16} ×
// striped scanners on/off at an equal thread budget (same consumer count
// and pool sizes in every run). The fig4-style methodology: prefill at
// full simulator speed, switch injected FDB latencies on, and let the
// consumer pool saturate against the backlog for a fixed window.
//
// Expected shape: with tens of thousands of vested pointers the scan pass
// dominates — a 1-shard scanner must decode the full peek_max id set every
// pass and every consumer repeats that same monolithic scan. Sharding
// splits the vested set, and striping gives each consumer a disjoint slice
// (1/n_consumers of the shards) peeked concurrently through the futures
// layer, so per-consumer scan cost drops ~4x and pass rate — hence drain
// throughput — rises. Striping also zeroes lease collisions (disjoint
// domains, per-shard sequential election); with QuiCK's read-before-lease
// that is a secondary effect here, visible in collision_pct. CI gates
// shards16/striped >= 1.5x shards1/plain (compare_bench.py).

#include "bench_common.h"

#include <thread>

#include "workload/zipf.h"

namespace quick::bench {
namespace {

constexpr int kTenants = 20000;
constexpr int kDraws = 80000;  // Zipf item draws over the tenant universe
constexpr int kConsumers = 4;

/// Zipf(0.9)-skewed prefill: kDraws items over kTenants queues, capped at
/// 16 per tenant, enqueued in batches at full simulator speed.
void PrefillZipf(wl::Harness* harness, int64_t* out_total) {
  wl::ZipfSampler zipf(kTenants, 0.9);
  Random rng(harness->options().seed);
  std::vector<int> per_tenant(kTenants, 0);
  for (int i = 0; i < kDraws; ++i) {
    int& n = per_tenant[static_cast<size_t>(zipf.Sample(&rng))];
    if (n < 16) ++n;
  }
  std::atomic<int64_t> total{0};
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int c = t; c < kTenants; c += kThreads) {
        int remaining = per_tenant[static_cast<size_t>(c)];
        while (remaining > 0) {
          const int batch = std::min(remaining, 8);
          if (harness->EnqueueSim(c, batch).ok()) {
            total.fetch_add(batch, std::memory_order_relaxed);
          }
          remaining -= batch;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  *out_total = total.load();
}

void BM_ScaleTenants(benchmark::State& state) {
  QuietLogs();
  const int shards = static_cast<int>(state.range(0));
  const bool striped = state.range(1) != 0;

  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;  // the queue machinery, not the work, is measured
  hopts.grv_cache_staleness_millis = 5;
  hopts.top_zone_shards = shards;
  wl::Harness harness(hopts);

  int64_t prefilled = 0;
  PrefillZipf(&harness, &prefilled);
  // Light injected FDB latencies after the prefill: enough that a
  // transaction round-trip is not free, while keeping the scanner's peek
  // decode — the thing sharding actually divides — the dominant cost.
  fdb::LatencyModel latency;
  latency.grv_micros = 100;
  latency.grv_causal_read_risky_micros = 20;
  latency.read_micros = 20;
  latency.commit_micros = 200;
  harness.cloudkit()->clusters()->Get("cluster0")->set_latency(latency);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 2;
  config.selection_frac = 0.1;
  config.selection_max = 32;
  config.striped_scanners = striped;
  config.async_pipeline = true;
  config.max_inflight_txns = 512;
  config.lease_batch_size = 8;
  config.async_executor_threads = 8;

  for (auto _ : state) {
    // MakeConsumer wires the harness election cache: per-(cluster, shard)
    // sequential election in every mode; striping on top when enabled.
    auto consumers = StartConsumers(&harness, kConsumers, config);
    SleepMs(500);  // warm up: membership announced, stripes settled
    const int64_t before = harness.WorkExecuted();
    const int64_t steals_before = [&] {
      int64_t total = 0;
      for (auto& c : consumers) total += c->stats().steals.Value();
      return total;
    }();
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(3000);
    const int64_t after = harness.WorkExecuted();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    PoolStats stats;
    Collect(consumers, &stats);
    int64_t steals = -steals_before;
    int64_t shards_owned = 0;
    int64_t scans = 0;
    Histogram scan_micros;
    for (auto& c : consumers) {
      steals += c->stats().steals.Value();
      shards_owned += c->stats().shards_owned.load();
      scans += c->stats().scans.Value();
      scan_micros.Merge(c->stats().scan_micros);
    }
    StopConsumers(consumers);

    const double attempts =
        std::max<double>(1.0, static_cast<double>(stats.lease_attempts));
    state.counters["shards"] = shards;
    state.counters["striped"] = striped ? 1 : 0;
    state.counters["throughput_items_per_sec"] = (after - before) / secs;
    state.counters["collision_pct"] =
        100.0 * (stats.collisions_read + stats.collisions_commit) / attempts;
    state.counters["steals_per_sec"] = steals / secs;
    state.counters["shards_owned_total"] =
        static_cast<double>(shards_owned);
    state.counters["backlog_left"] =
        static_cast<double>(prefilled - harness.WorkExecuted());
    state.counters["scans_per_sec"] = scans / secs;
    state.counters["scan_us_mean"] = scan_micros.Mean();
    BenchReportCollector::Global()->ReportRun(
        "BM_ScaleTenants/shards" + std::to_string(shards) +
            (striped ? "/striped" : "/plain"),
        state,
        {{"pointer_latency_us", &stats.pointer_latency_micros},
         {"item_latency_us", &stats.item_latency_micros}});
  }
}

BENCHMARK(BM_ScaleTenants)
    // top_zone_shards {1,4,16} × striped {off,on}; shards=1 ignores
    // striping (a one-shard stripe would idle every consumer but one), so
    // the 1/striped cell doubles as a no-op sanity point.
    ->ArgNames({"shards", "striped"})
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("scale_tenants")
