// Micro-benchmarks of the two Resolver implementations: the legacy
// linear-scan ConflictTracker and the default interval-map
// IntervalResolver. The headline case is a conflict check by an old
// reader against a large tracked window — O(tracked commits) for the
// linear scan, O(log n) for the interval map — which is exactly the
// shape the QuiCK scanner produces (long-lived peeks over a hot commit
// stream). Not a paper figure; feeds the committed
// bench/baseline/BENCH_micro_resolver.json regression baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "fdb/conflict_tracker.h"
#include "fdb/interval_resolver.h"
#include "fdb/resolver.h"

namespace quick::bench {
namespace {

// state.range(0): 0 = legacy linear ConflictTracker, 1 = IntervalResolver.
std::unique_ptr<fdb::Resolver> MakeResolver(int64_t kind) {
  if (kind == 0) return std::make_unique<fdb::ConflictTracker>();
  return std::make_unique<fdb::IntervalResolver>();
}

const char* KindName(int64_t kind) { return kind == 0 ? "linear" : "interval"; }

std::string BenchKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

KeyRange SingleKey(int i) {
  std::string k = BenchKey(i);
  std::string end = k;
  end.push_back('\0');
  return KeyRange{std::move(k), std::move(end)};
}

// One single-key commit per version, distinct keys: the tracked window a
// cluster holds after `n` disjoint writes (queue enqueues land like this).
void Populate(fdb::Resolver* resolver, int n) {
  for (int i = 0; i < n; ++i) {
    resolver->AddCommit(i + 1, {SingleKey(i)});
  }
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Old reader, no overlap: the check must consider every commit newer than
// the read version. The linear scan walks all of them; the interval map
// answers from the (empty) overlap set.
void BM_ResolverStaleMiss(benchmark::State& state) {
  auto resolver = MakeResolver(state.range(0));
  const int tracked = static_cast<int>(state.range(1));
  Populate(resolver.get(), tracked);
  const std::vector<KeyRange> reads = {SingleKey(tracked + 1000)};

  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver->HasConflict(reads, /*read_version=*/1));
  }
  const double secs = SecondsSince(t0);

  state.SetItemsProcessed(state.iterations());
  state.counters["tracked"] = tracked;
  state.counters["checks_per_sec"] =
      static_cast<double>(state.iterations()) / secs;
  BenchReportCollector::Global()->ReportRun(
      std::string("BM_ResolverStaleMiss/") + KindName(state.range(0)) + "/" +
          std::to_string(tracked),
      state);
}
BENCHMARK(BM_ResolverStaleMiss)
    ->ArgNames({"kind", "tracked"})
    ->ArgsProduct({{0, 1}, {1000, 10000}});

// Fresh reader, overlapping range: both implementations early-exit — the
// common no-contention commit. Guards against the interval map winning
// the stale case by losing the hot one.
void BM_ResolverFreshHit(benchmark::State& state) {
  auto resolver = MakeResolver(state.range(0));
  const int tracked = static_cast<int>(state.range(1));
  Populate(resolver.get(), tracked);
  const std::vector<KeyRange> reads = {SingleKey(tracked - 1)};

  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolver->HasConflict(reads, /*read_version=*/tracked - 4));
  }
  const double secs = SecondsSince(t0);

  state.SetItemsProcessed(state.iterations());
  state.counters["tracked"] = tracked;
  state.counters["checks_per_sec"] =
      static_cast<double>(state.iterations()) / secs;
  BenchReportCollector::Global()->ReportRun(
      std::string("BM_ResolverFreshHit/") + KindName(state.range(0)) + "/" +
          std::to_string(tracked),
      state);
}
BENCHMARK(BM_ResolverFreshHit)
    ->ArgNames({"kind", "tracked"})
    ->ArgsProduct({{0, 1}, {10000}});

// Steady state: keep committing single-key writes over a bounded key
// space while pruning a trailing window, as the Database does — measures
// AddCommit plus incremental Prune together.
void BM_ResolverAddCommitPrune(benchmark::State& state) {
  auto resolver = MakeResolver(state.range(0));
  const int window = static_cast<int>(state.range(1));
  Populate(resolver.get(), window);
  fdb::Version version = window;

  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    ++version;
    resolver->AddCommit(version, {SingleKey(static_cast<int>(version) %
                                            (2 * window))});
    if (version % 256 == 0) resolver->Prune(version - window);
  }
  const double secs = SecondsSince(t0);

  state.SetItemsProcessed(state.iterations());
  state.counters["window"] = window;
  state.counters["commits_per_sec"] =
      static_cast<double>(state.iterations()) / secs;
  BenchReportCollector::Global()->ReportRun(
      std::string("BM_ResolverAddCommitPrune/") + KindName(state.range(0)) +
          "/" + std::to_string(window),
      state);
}
BENCHMARK(BM_ResolverAddCommitPrune)
    ->ArgNames({"kind", "window"})
    ->ArgsProduct({{0, 1}, {10000}});

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("micro_resolver")
