#ifndef QUICK_BENCH_BENCH_COMMON_H_
#define QUICK_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/logging.h"
#include "workload/harness.h"
#include "workload/load_generator.h"

namespace quick::bench {

/// Aggregated consumer statistics over a pool.
struct PoolStats {
  int64_t items_processed = 0;
  int64_t items_dequeued = 0;
  int64_t lease_attempts = 0;
  int64_t collisions_read = 0;
  int64_t collisions_commit = 0;
  int64_t pointers_deleted = 0;
  Histogram pointer_latency_micros;
  Histogram item_latency_micros;
};

inline void Collect(
    const std::vector<std::unique_ptr<core::Consumer>>& consumers,
    PoolStats* out_stats) {
  PoolStats& out = *out_stats;
  for (const auto& c : consumers) {
    core::ConsumerStats& s = c->stats();
    out.items_processed += s.items_processed.Value();
    out.items_dequeued += s.items_dequeued.Value();
    out.lease_attempts += s.pointer_lease_attempts.Value();
    out.collisions_read += s.lease_collisions_read.Value();
    out.collisions_commit += s.lease_collisions_commit.Value();
    out.pointers_deleted += s.pointers_deleted.Value();
    out.pointer_latency_micros.Merge(s.pointer_latency_micros);
    out.item_latency_micros.Merge(s.item_latency_micros);
  }
}

/// Starts `n` consumers over the harness's clusters.
inline std::vector<std::unique_ptr<core::Consumer>> StartConsumers(
    wl::Harness* harness, int n, core::ConsumerConfig config) {
  std::vector<std::unique_ptr<core::Consumer>> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(
        harness->MakeConsumer(config, "bench-consumer-" + std::to_string(i)));
    out.back()->Start();
  }
  return out;
}

inline void StopConsumers(
    std::vector<std::unique_ptr<core::Consumer>>& consumers) {
  for (auto& c : consumers) c->Stop();
}

inline void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Benchmarks run with logging quieted.
inline void QuietLogs() { Logger::Threshold() = LogLevel::kError; }

/// Scaled-down defaults shared by the figure benches. The paper ran 128
/// manager + 128 worker threads per consumer on server hardware; one laptop
/// process hosts many consumers, so each gets a small pool. All shapes are
/// preserved; absolute throughput is not comparable (see EXPERIMENTS.md).
inline core::ConsumerConfig BenchConsumerConfig() {
  core::ConsumerConfig config;
  config.num_manager_threads = 2;
  config.num_worker_threads = 8;
  config.pointer_lease_millis = 500;
  config.item_lease_millis = 3000;
  config.lease_extension_interval_millis = 500;
  config.min_inactive_millis = 5000;
  config.idle_sleep_millis = 1;
  config.selection_frac = 0.02;
  config.selection_max = 2000;
  config.peek_max = 20000;
  return config;
}

}  // namespace quick::bench

#endif  // QUICK_BENCH_BENCH_COMMON_H_
