// Replication-path benchmarks: what warm-standby log shipping costs at
// steady state (how far a pumped replica trails the primary, and how fast
// frames move over the link), and how long a fenced region failover takes
// end to end — from the kill to the first item dequeued on the promoted
// primary. Not a paper figure; pins the simulator's DESIGN.md §10 layer.
//
// Counter naming is deliberate: everything here is fsync- and
// recovery-bound, so every counter uses an ungated name (not in
// compare_bench.py THROUGHPUT_KEYS) — trend-watching, not thresholds.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "bench_report.h"

#include "common/histogram.h"
#include "fdb/replication.h"
#include "quick/consumer.h"
#include "workload/harness.h"

namespace quick {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("quick_bench_replication_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Steady-state shipping: one primary + one warm standby, the shipper
// pumped after every acked commit (the tightest cadence the harness's
// background thread approximates). Replica lag is sampled after each
// pump; with a healthy link it should sit at zero — the pump drains the
// whole published log — so the histogram doubles as a regression tripwire
// for the shipper ever falling behind a single-writer primary.
void BM_SteadyStateShipping(benchmark::State& state) {
  const std::string dir = FreshDir("steady");
  fdb::ReplicationGroupOptions opts;
  opts.num_replicas = 1;
  opts.dir = dir;
  // Manual checkpoints only: steady state ships frames, never snapshots.
  opts.db_options.durability.checkpoint_interval_bytes = 0;
  fdb::ReplicationGroup group("bench", opts);
  if (!group.Start().ok()) {
    state.SkipWithError("replication group failed to start");
    return;
  }
  const std::string standby = fdb::ReplicationGroup::RegionName(1);

  Histogram lag_versions;
  int64_t i = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    fdb::Transaction txn = group.primary()->CreateTransaction();
    txn.Set("key" + std::to_string(i % 512), "payload-" + std::to_string(i));
    benchmark::DoNotOptimize(txn.Commit());
    benchmark::DoNotOptimize(group.PumpOnce());
    lag_versions.Record(
        static_cast<int64_t>(group.primary()->LastCommittedVersion() -
                             group.ReplicaAppliedVersion(standby)));
    ++i;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const fdb::LogShipper::Stats ship = group.ShipperStats(standby);
  const fdb::ReplicaApplier::Stats apply = group.ApplierStats(standby);
  state.SetItemsProcessed(state.iterations());
  // fsync-bound on both sides of the link: ungated names.
  state.counters["ship_frames_per_sec"] =
      secs > 0 ? static_cast<double>(ship.frames_shipped) / secs : 0.0;
  state.counters["replicated_commits_per_sec"] =
      secs > 0 ? static_cast<double>(state.iterations()) / secs : 0.0;
  state.counters["frames_shipped"] = static_cast<double>(ship.frames_shipped);
  state.counters["frames_applied"] = static_cast<double>(apply.frames_applied);
  state.counters["replica_lag_versions_max"] =
      static_cast<double>(lag_versions.Stats().max);
  bench::BenchReportCollector::Global()->ReportRun(
      "BM_SteadyStateShipping/1_standby", state,
      {{"lag_versions", &lag_versions}});
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SteadyStateShipping)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Failover end to end, through the full stack: a replicated harness takes
// a batch of enqueues, the primary region is killed, and the clock runs
// from the kill until (a) Failover() returns — seal, drain, promote,
// recover — and (b) the first item is dequeued and executed on the
// promoted primary. Each iteration is one flip; the old region rejoins as
// a follower so the group always has a standby for the next one.
void BM_FailoverToFirstDequeue(benchmark::State& state) {
  const std::string dir = FreshDir("failover");
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.enable_wal = true;
  hopts.wal_dir = dir;
  // Bound what each promotion has to replay: flips accumulate log.
  hopts.checkpoint_interval_bytes = 256 << 10;
  hopts.replicas_per_cluster = 1;
  hopts.replication_pump_interval_millis = 1;
  wl::Harness harness(hopts);
  const std::string cluster = harness.cluster_names()[0];

  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 4;
  auto consumer = harness.MakeConsumer(config, "bench-failover");

  constexpr int kItemsPerFlip = 24;
  Histogram failover_micros;
  Histogram first_dequeue_micros;
  for (auto _ : state) {
    for (int i = 0; i < kItemsPerFlip; ++i) {
      if (!harness.EnqueueSim(i % 4, 1).ok()) {
        state.SkipWithError("enqueue failed against a healthy primary");
        return;
      }
    }
    const int64_t executed_before = harness.WorkExecuted();
    fdb::ReplicationGroup* group = harness.replication(cluster);
    const std::string old_region = group->primary_region();
    harness.KillRegion(cluster);

    const auto k0 = std::chrono::steady_clock::now();
    auto promoted = harness.Failover(cluster);
    const auto k1 = std::chrono::steady_clock::now();
    if (!promoted.ok()) {
      state.SkipWithError("failover refused");
      return;
    }
    while (harness.WorkExecuted() == executed_before) {
      (void)consumer->RunOnePass(cluster);
    }
    const auto k2 = std::chrono::steady_clock::now();

    failover_micros.Record(
        std::chrono::duration_cast<std::chrono::microseconds>(k1 - k0)
            .count());
    first_dequeue_micros.Record(
        std::chrono::duration_cast<std::chrono::microseconds>(k2 - k0)
            .count());
    if (!group->RejoinAsFollower(old_region).ok()) {
      state.SkipWithError("dead region failed to rejoin as follower");
      return;
    }
  }

  state.SetItemsProcessed(state.iterations());
  // Recovery- and disk-bound: ungated names (milliseconds, mean of the
  // per-flip histograms).
  state.counters["failover_ms"] = failover_micros.Stats().mean / 1000.0;
  state.counters["first_dequeue_ms"] =
      first_dequeue_micros.Stats().mean / 1000.0;
  state.counters["flips"] = static_cast<double>(state.iterations());
  bench::BenchReportCollector::Global()->ReportRun(
      "BM_FailoverToFirstDequeue/1_standby", state,
      {{"failover_us", &failover_micros},
       {"first_dequeue_us", &first_dequeue_micros}});
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FailoverToFirstDequeue)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(6);

}  // namespace
}  // namespace quick

QUICK_BENCH_MAIN("replication")
