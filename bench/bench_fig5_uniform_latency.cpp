// Figure 5: pointer-pickup and work-item latency under uniform load with a
// single consumer processing pointers sequentially and dequeue_max = 1.
// Expected shape (paper §8): median and tail latencies are low and close;
// work-item latency ≈ pointer latency + dequeue cost.

#include "bench_common.h"

namespace quick::bench {
namespace {

void BM_Fig5_UniformLatency(benchmark::State& state) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 1;
  wl::Harness harness(hopts);

  // Uniform open-loop load the single consumer can absorb: the paper used
  // 150K clients at 1/min; this is the scaled equivalent.
  wl::LoadOptions lopts;
  lopts.num_clients = 150;
  lopts.rate_per_client_hz = 0.5;  // aggregate 75 items/s
  lopts.items_per_enqueue = 1;
  lopts.skewed = false;

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 1;
  config.sequential = true;

  for (auto _ : state) {
    wl::OpenLoopGenerator load(&harness, lopts);
    load.Start();
    // One consumer, sequential (no contention to avoid, as in the paper).
    auto consumer = harness.MakeConsumer(config, "fig5-consumer");
    consumer->Start();
    SleepMs(1000);  // warm-up
    consumer->stats().pointer_latency_micros.Reset();
    consumer->stats().item_latency_micros.Reset();
    SleepMs(4000);  // measurement window
    core::ConsumerStats& s = consumer->stats();
    state.counters["pointer_p50_ms"] =
        s.pointer_latency_micros.Percentile(0.50) / 1000.0;
    state.counters["pointer_p999_ms"] =
        s.pointer_latency_micros.Percentile(0.999) / 1000.0;
    state.counters["item_p50_ms"] =
        s.item_latency_micros.Percentile(0.50) / 1000.0;
    state.counters["item_p999_ms"] =
        s.item_latency_micros.Percentile(0.999) / 1000.0;
    state.counters["items_observed"] =
        static_cast<double>(s.item_latency_micros.Count());
    BenchReportCollector::Global()->ReportRun(
        "BM_Fig5_UniformLatency", state,
        {{"pointer_latency_us", &s.pointer_latency_micros},
         {"item_latency_us", &s.item_latency_micros}});
    consumer->Stop();
    load.Stop();
  }
}

BENCHMARK(BM_Fig5_UniformLatency)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("fig5_uniform_latency")
