#!/usr/bin/env python3
"""Threshold checks over BENCH_*.json reports.

Two kinds of checks:

1. Ratio invariants (always run, machine-independent): structural
   performance properties this repo promises, asserted within a single
   report so they hold on any hardware —
     - micro_resolver: the interval resolver beats the legacy linear scan
       by >= 5x on the stale-miss conflict check at 10k tracked commits.
     - micro_substrates: group commit beats per-commit log rounds by
       >= 1.5x on concurrent commit throughput.
     - fig7_contention: end-to-end throughput at the CI shape
       (selection_frac 0.05) improves with group commit on vs off.
     - admission_noisy_neighbor: admission control halves (>= 2x) the
       victim tenant's p99 latency under a flooding neighbor.
     - scale_tenants: a sharded (16) top-level queue with striped
       scanners beats the 1-shard unstriped baseline by >= 1.5x on
       drain throughput at an equal thread budget.

2. Baseline regression (with --baseline): every throughput counter shared
   by a baseline run and the current run must not drop by more than
   --threshold (default 25%). Baselines live in bench/baseline and are
   machine-relative; regenerate with --update after an intentional change:

     QUICK_BENCH_REPORT_DIR=bench/baseline ./build/bench/bench_micro_resolver
     ... (see bench/README.md)

When $GITHUB_STEP_SUMMARY is set (any GitHub Actions job), a compact
markdown bench-delta table — one row per gated ratio and per compared
throughput counter, current vs committed baseline — is appended to it so
the run's perf picture is readable from the job page without digging
through logs.

Exit status is non-zero when any check fails.
"""

import argparse
import glob
import json
import os
import sys

# Counters treated as higher-is-better throughput for baseline comparison.
THROUGHPUT_KEYS = (
    "throughput_items_per_sec",
    "throughput_commits_per_sec",
    "checks_per_sec",
    "commits_per_sec",
)

failures = []

# Rows for the $GITHUB_STEP_SUMMARY table, filled as checks run:
# (kind, bench, subject, baseline_text, current_text, delta_text, ok).
summary_rows = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL: {msg}")


def note(msg):
    print(f"  ok: {msg}")


def load_reports(directory):
    """{bench_name: {run_name: {counter: value}}} for BENCH_*.json in dir."""
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as f:
            report = json.load(f)
        runs = {}
        for run in report.get("runs", []):
            runs[run["name"]] = run.get("counters", {})
        reports[report["bench"]] = runs
    return reports


def find_counter(runs, run_substr, counter):
    """The counter value of the first run whose name contains run_substr."""
    for name, counters in runs.items():
        if run_substr in name and counter in counters:
            return name, counters[counter]
    return None, None


def check_ratio(runs, bench, numer_substr, denom_substr, counter, min_ratio):
    n_name, numer = find_counter(runs, numer_substr, counter)
    d_name, denom = find_counter(runs, denom_substr, counter)
    if numer is None or denom is None:
        fail(f"{bench}: missing runs for ratio check "
             f"({numer_substr!r} and/or {denom_substr!r} with {counter!r})")
        return
    if denom <= 0:
        fail(f"{bench}: {d_name} has non-positive {counter} ({denom})")
        return
    ratio = numer / denom
    ok = ratio >= min_ratio
    summary_rows.append(("ratio", bench, f"{n_name} / {d_name} ({counter})",
                         f">= {min_ratio}x", f"{ratio:.1f}x", "", ok))
    if not ok:
        fail(f"{bench}: {n_name} / {d_name} {counter} ratio {ratio:.2f} "
             f"< required {min_ratio}x")
    else:
        note(f"{bench}: {n_name} vs {d_name}: {ratio:.1f}x "
             f"(required {min_ratio}x)")


def ratio_invariants(current):
    if "micro_resolver" in current:
        check_ratio(current["micro_resolver"], "micro_resolver",
                    "BM_ResolverStaleMiss/interval/10000",
                    "BM_ResolverStaleMiss/linear/10000",
                    "checks_per_sec", 5.0)
    if "micro_substrates" in current:
        check_ratio(current["micro_substrates"], "micro_substrates",
                    "BM_FdbConcurrentCommit/group",
                    "BM_FdbConcurrentCommit/single",
                    "throughput_commits_per_sec", 1.5)
    if "fig7_contention" in current:
        check_ratio(current["fig7_contention"], "fig7_contention",
                    "BM_Fig7_SelectionFrac/500/group",
                    "BM_Fig7_SelectionFrac/500/single",
                    "throughput_items_per_sec", 1.2)
    if "fig7_async" in current:
        # The async pipelined consumer core (DESIGN.md §11): a 256-deep
        # in-flight window must beat the synchronous pipeline by >= 10x on
        # drain throughput at the same 12-thread budget.
        check_ratio(current["fig7_async"], "fig7_async",
                    "BM_Fig7_Async/w256",
                    "BM_Fig7_Async/w0",
                    "throughput_items_per_sec", 10.0)
    if "scale_tenants" in current:
        # Sharded Q_C scale-out (DESIGN.md §12): 16 shards + striped
        # scanners must beat the 1-shard unstriped baseline by >= 1.5x on
        # drain throughput at an equal thread budget.
        check_ratio(current["scale_tenants"], "scale_tenants",
                    "BM_ScaleTenants/shards16/striped",
                    "BM_ScaleTenants/shards1/plain",
                    "throughput_items_per_sec", 1.5)
    if "admission_noisy_neighbor" in current:
        check_ratio(current["admission_noisy_neighbor"],
                    "admission_noisy_neighbor",
                    "BM_NoisyNeighbor/admission_off",
                    "BM_NoisyNeighbor/admission_on",
                    "victim_p99_ms", 2.0)


def baseline_regressions(baseline, current, threshold):
    compared = 0
    for bench, base_runs in sorted(baseline.items()):
        cur_runs = current.get(bench)
        if cur_runs is None:
            fail(f"{bench}: baseline exists but no current report was found")
            continue
        for run_name, base_counters in sorted(base_runs.items()):
            cur_counters = cur_runs.get(run_name)
            if cur_counters is None:
                fail(f"{bench}: baseline run {run_name!r} missing from "
                     f"current report")
                continue
            for key in THROUGHPUT_KEYS:
                if key not in base_counters or key not in cur_counters:
                    continue
                base, cur = base_counters[key], cur_counters[key]
                if base <= 0:
                    continue
                compared += 1
                drop = 1.0 - cur / base
                ok = drop <= threshold
                summary_rows.append(
                    ("baseline", bench, f"{run_name} ({key})",
                     f"{base:.6g}", f"{cur:.6g}", f"{-100 * drop:+.1f}%", ok))
                if not ok:
                    fail(f"{bench}: {run_name} {key} regressed "
                         f"{100 * drop:.1f}% ({base:.6g} -> {cur:.6g}, "
                         f"limit {100 * threshold:.0f}%)")
                else:
                    note(f"{bench}: {run_name} {key} {base:.6g} -> "
                         f"{cur:.6g} ({-100 * drop:+.1f}%)")
    if compared == 0:
        fail("baseline comparison matched zero throughput counters")


def write_step_summary(threshold):
    """Appends the bench-delta table to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not summary_rows:
        return
    lines = ["## Bench deltas", ""]
    ratios = [r for r in summary_rows if r[0] == "ratio"]
    deltas = [r for r in summary_rows if r[0] == "baseline"]
    if ratios:
        lines += ["### Ratio invariants", "",
                  "| bench | ratio | required | measured | |",
                  "|---|---|---|---|---|"]
        for _, bench, subject, required, measured, _, ok in ratios:
            mark = "✅" if ok else "❌"
            lines.append(f"| {bench} | {subject} | {required} | {measured} "
                         f"| {mark} |")
        lines.append("")
    if deltas:
        lines += [f"### Current vs committed baseline "
                  f"(limit -{100 * threshold:.0f}%)", "",
                  "| bench | counter | baseline | current | delta | |",
                  "|---|---|---|---|---|---|"]
        for _, bench, subject, base, cur, delta, ok in deltas:
            mark = "✅" if ok else "❌"
            lines.append(f"| {bench} | {subject} | {base} | {cur} | {delta} "
                         f"| {mark} |")
        lines.append("")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="directory holding the just-produced "
                             "BENCH_*.json reports")
    parser.add_argument("--baseline", default=None,
                        help="directory holding committed baseline "
                             "BENCH_*.json reports")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional throughput drop "
                             "vs baseline (default 0.25)")
    args = parser.parse_args()

    current = load_reports(args.current)
    if not current:
        print(f"no BENCH_*.json reports in {args.current}", file=sys.stderr)
        return 1

    ratio_invariants(current)
    if args.baseline:
        baseline = load_reports(args.baseline)
        if not baseline:
            fail(f"no BENCH_*.json baselines in {args.baseline}")
        else:
            baseline_regressions(baseline, current, args.threshold)

    write_step_summary(args.threshold)
    if failures:
        print(f"\n{len(failures)} bench check(s) failed")
        return 1
    print("\nall bench checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
