// Ablation A7 — cost of strict FIFO ordering (§5's commit-timestamp
// extension): a FIFO queue zone maintains a sticky version index (one
// versionstamped entry + header per item) on top of the default schema.
// This bench measures enqueue and dequeue+complete costs for both schemas.

#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "cloudkit/queue_zone.h"
#include "fdb/retry.h"

namespace quick::bench {
namespace {

void RunEnqueue(benchmark::State& state, bool fifo) {
  fdb::Database db("fifo-bench");
  const tup::Subspace subspace(tup::Tuple().AddString("z"));
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    ck::QueueZone zone(&txn, subspace, SystemClock::Default(), fifo);
    ck::QueuedItem item;
    item.job_type = "bench";
    benchmark::DoNotOptimize(zone.Enqueue(item, 0));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}

void RunDequeueComplete(benchmark::State& state, bool fifo) {
  fdb::Database db("fifo-bench");
  const tup::Subspace subspace(tup::Tuple().AddString("z"));
  // Pre-fill a rolling backlog.
  auto refill = [&](int n) {
    (void)fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
      ck::QueueZone zone(&txn, subspace, SystemClock::Default(), fifo);
      for (int i = 0; i < n; ++i) {
        ck::QueuedItem item;
        item.job_type = "bench";
        QUICK_RETURN_IF_ERROR(zone.Enqueue(item, 0).status());
      }
      return Status::OK();
    });
  };
  refill(256);
  int since_refill = 0;
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    ck::QueueZone zone(&txn, subspace, SystemClock::Default(), fifo);
    auto batch = fifo ? zone.DequeueFifo(1, 10000) : zone.Dequeue(1, 10000);
    if (batch.ok() && !batch->empty()) {
      (void)zone.Complete((*batch)[0].item.id, (*batch)[0].lease_id);
    }
    (void)txn.Commit();
    if (++since_refill >= 200) {
      state.PauseTiming();
      refill(200);
      since_refill = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_A7_EnqueueDefault(benchmark::State& state) {
  RunEnqueue(state, false);
}
void BM_A7_EnqueueFifo(benchmark::State& state) { RunEnqueue(state, true); }
void BM_A7_DequeueCompleteDefault(benchmark::State& state) {
  RunDequeueComplete(state, false);
}
void BM_A7_DequeueCompleteFifo(benchmark::State& state) {
  RunDequeueComplete(state, true);
}

BENCHMARK(BM_A7_EnqueueDefault);
BENCHMARK(BM_A7_EnqueueFifo);
BENCHMARK(BM_A7_DequeueCompleteDefault);
BENCHMARK(BM_A7_DequeueCompleteFifo);

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_fifo_overhead")
