// Ablation A4 — pointer-GC grace period: QuiCK deletes a pointer only
// after its queue has been inactive for min_inactive (§6 "Pointer
// garbage-collection"). With a bursty on/off workload, zero grace causes
// pointer delete/create churn — every new burst pays a pointer creation
// (and risks create/delete conflicts) — while a grace period longer than
// the burst gap lets bursts reuse the standing pointer.

#include "bench_common.h"

namespace quick::bench {
namespace {

void BM_A4_PointerGcGrace(benchmark::State& state) {
  QuietLogs();
  const int64_t min_inactive_ms = state.range(0);

  wl::HarnessOptions hopts;
  hopts.work_millis = 0;
  wl::Harness harness(hopts);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 4;
  config.min_inactive_millis = min_inactive_ms;
  config.pointer_lease_millis = 30;   // fast revisits so GC can trigger
  config.item_lease_millis = 100;     // pointer re-vests quickly after drain

  constexpr int kClients = 16;
  constexpr int kBursts = 12;

  for (auto _ : state) {
    auto consumers = StartConsumers(&harness, 2, config);
    fdb::Database* db = harness.cloudkit()->clusters()->Get("cluster0");
    fdb::Database::Stats before = db->GetStats();
    // Bursty traffic: a burst to every client, then an idle gap that
    // exceeds a zero/short grace but not a long one.
    for (int burst = 0; burst < kBursts; ++burst) {
      for (int c = 0; c < kClients; ++c) {
        benchmark::DoNotOptimize(harness.EnqueueSim(c, 2));
      }
      SleepMs(300);  // idle gap between bursts (> pointer re-vest time)
    }
    SleepMs(300);  // drain
    fdb::Database::Stats after = db->GetStats();
    PoolStats stats;
    Collect(consumers, &stats);
    StopConsumers(consumers);

    state.counters["min_inactive_ms"] = static_cast<double>(min_inactive_ms);
    state.counters["pointers_deleted"] =
        static_cast<double>(stats.pointers_deleted);
    state.counters["fdb_conflicts"] =
        static_cast<double>(after.conflicts - before.conflicts);
    state.counters["items_processed"] =
        static_cast<double>(stats.items_processed);
    BenchReportCollector::Global()->ReportRun(
        "BM_A4_PointerGcGrace/" + std::to_string(min_inactive_ms), state);
  }
}

BENCHMARK(BM_A4_PointerGcGrace)
    ->Arg(0)       // GC immediately on observing empty
    ->Arg(150)     // shorter than the burst gap: still churns
    ->Arg(60000)   // longer than the whole run: no churn
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_pointer_gc")
