#ifndef QUICK_BENCH_BENCH_REPORT_H_
#define QUICK_BENCH_BENCH_REPORT_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"

/// Build provenance baked into every report so an uploaded BENCH_*.json
/// artifact identifies the exact tree and build flavor that produced it.
/// The bench CMakeLists injects both; standalone compiles fall back to
/// "unknown".
#ifndef QUICK_GIT_SHA
#define QUICK_GIT_SHA "unknown"
#endif
#ifndef QUICK_BUILD_CONFIG
#define QUICK_BUILD_CONFIG "unknown"
#endif

namespace quick::bench {

/// One benchmark run, captured for the machine-readable report: the
/// google-benchmark counters (throughput, collision percentages, ...) plus
/// optional latency histogram summaries keyed by series name.
struct BenchRun {
  std::string name;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, HistogramStats>> latencies;
};

/// Process-wide collector behind the BENCH_<name>.json artifacts CI
/// uploads. Benchmarks call ReportRun() once per run (after setting their
/// state.counters); QUICK_BENCH_MAIN writes the file on exit.
class BenchReportCollector {
 public:
  static BenchReportCollector* Global() {
    static BenchReportCollector* collector = new BenchReportCollector();
    return collector;
  }

  /// Records `state`'s counters under `run_name` (the installed
  /// google-benchmark has no State name accessor, so call sites name their
  /// runs), with optional latency series (summarized immediately, so the
  /// histograms may be reset or destroyed afterwards).
  void ReportRun(
      std::string run_name, const benchmark::State& state,
      const std::vector<std::pair<std::string, const Histogram*>>& latencies =
          {}) {
    BenchRun run;
    run.name = std::move(run_name);
    for (const auto& [name, counter] : state.counters) {
      run.counters.emplace_back(name, counter.value);
    }
    for (const auto& [name, histogram] : latencies) {
      run.latencies.emplace_back(name, histogram->Stats());
    }
    std::lock_guard<std::mutex> lock(mu_);
    runs_.push_back(std::move(run));
  }

  /// The whole report as one JSON object:
  /// {"bench": <name>, "git_sha": <sha>, "build_config": <flavor>,
  /// "runs": [{"name", "counters": {..}, "latencies":
  /// {series: {count,sum,mean,min,max,p50,p95,p99,p999}}}]}.
  std::string ToJson(const std::string& bench_name) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"bench\":\"" + JsonEscape(bench_name) +
                      "\",\"git_sha\":\"" + JsonEscape(QUICK_GIT_SHA) +
                      "\",\"build_config\":\"" +
                      JsonEscape(QUICK_BUILD_CONFIG) + "\",\"runs\":[";
    for (size_t i = 0; i < runs_.size(); ++i) {
      const BenchRun& run = runs_[i];
      if (i > 0) out += ",";
      out += "{\"name\":\"" + JsonEscape(run.name) + "\",\"counters\":{";
      for (size_t j = 0; j < run.counters.size(); ++j) {
        if (j > 0) out += ",";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", run.counters[j].second);
        out += "\"" + JsonEscape(run.counters[j].first) + "\":" + buf;
      }
      out += "},\"latencies\":{";
      for (size_t j = 0; j < run.latencies.size(); ++j) {
        if (j > 0) out += ",";
        out += "\"" + JsonEscape(run.latencies[j].first) +
               "\":" + HistogramStatsJson(run.latencies[j].second);
      }
      out += "}}";
    }
    out += "]}";
    return out;
  }

  /// Writes BENCH_<bench_name>.json into $QUICK_BENCH_REPORT_DIR (or the
  /// working directory). Returns false when the file cannot be opened.
  bool WriteFile(const std::string& bench_name) const {
    std::string dir = ".";
    if (const char* env = std::getenv("QUICK_BENCH_REPORT_DIR");
        env != nullptr && env[0] != '\0') {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + bench_name + ".json";
    std::ofstream file(path);
    if (!file) return false;
    file << ToJson(bench_name) << "\n";
    return static_cast<bool>(file);
  }

  size_t RunCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<BenchRun> runs_;
};

}  // namespace quick::bench

/// Drop-in replacement for BENCHMARK_MAIN(): runs the registered
/// benchmarks, then dumps the collected runs as BENCH_<name>.json so CI
/// can upload and validate them.
#define QUICK_BENCH_MAIN(bench_name)                                       \
  int main(int argc, char** argv) {                                        \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::benchmark::RunSpecifiedBenchmarks();                                 \
    ::benchmark::Shutdown();                                               \
    if (!::quick::bench::BenchReportCollector::Global()->WriteFile(        \
            bench_name)) {                                                 \
      std::fprintf(stderr, "failed to write BENCH_%s.json\n", bench_name); \
      return 1;                                                            \
    }                                                                      \
    return 0;                                                              \
  }

#endif  // QUICK_BENCH_BENCH_REPORT_H_
