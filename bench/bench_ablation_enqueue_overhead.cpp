// Ablation A6 — enqueue overhead (§2 "Low overhead"): "the overhead of
// bookkeeping for tasks is negligible as it amounts to one or two
// additional keys in an existing FoundationDB transaction". This bench
// measures a client transaction that writes user data alone vs the same
// transaction with an embedded QuiCK enqueue, and counts the extra keys.

#include "bench_common.h"

#include "fdb/retry.h"

namespace quick::bench {
namespace {

void BM_A6_ClientTransactionAlone(benchmark::State& state) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.latency = fdb::LatencyModel::PaperLike();
  wl::Harness harness(hopts);
  const ck::DatabaseRef db =
      harness.cloudkit()->OpenDatabase(harness.ClientDb(0));
  int64_t i = 0;
  for (auto _ : state) {
    Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      // A realistic client request reads before it writes (so both
      // variants pay the GRV; the enqueue's marginal cost is what shows).
      const std::string key =
          db.subspace.Pack(tup::Tuple().AddString("doc").AddInt(i % 64));
      QUICK_RETURN_IF_ERROR(txn.Get(key).status());
      txn.Set(key, "contents");
      return Status::OK();
    });
    benchmark::DoNotOptimize(st);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  BenchReportCollector::Global()->ReportRun(
      "BM_A6_ClientTransactionAlone", state);
}

void BM_A6_ClientTransactionWithEnqueue(benchmark::State& state) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.latency = fdb::LatencyModel::PaperLike();
  wl::Harness harness(hopts);
  const ck::DatabaseRef db =
      harness.cloudkit()->OpenDatabase(harness.ClientDb(0));
  core::Quick* quick = harness.quick();

  // Warm: create the pointer once so the steady state (pointer exists,
  // enqueue adds item keys + reads one index key) is what gets measured.
  (void)harness.EnqueueSim(0, 1);

  fdb::Database::Stats before = db.cluster->GetStats();
  int64_t i = 0;
  for (auto _ : state) {
    Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      const std::string key =
          db.subspace.Pack(tup::Tuple().AddString("doc").AddInt(i % 64));
      QUICK_RETURN_IF_ERROR(txn.Get(key).status());
      txn.Set(key, "contents");
      core::WorkItem item;
      item.job_type = wl::kSimJobType;
      core::EnqueueFollowUp follow_up;
      return quick->EnqueueInTransaction(&txn, db, item, 0, &follow_up)
          .status();
    });
    benchmark::DoNotOptimize(st);
    ++i;
  }
  fdb::Database::Stats after = db.cluster->GetStats();
  state.SetItemsProcessed(state.iterations());
  // Reads added by the embedded enqueue, per transaction (the pointer-index
  // point read; item writes add no reads).
  state.counters["reads_per_txn"] =
      static_cast<double>(after.reads - before.reads) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  BenchReportCollector::Global()->ReportRun(
      "BM_A6_ClientTransactionWithEnqueue", state);
}

BENCHMARK(BM_A6_ClientTransactionAlone)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_A6_ClientTransactionWithEnqueue)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_enqueue_overhead")
