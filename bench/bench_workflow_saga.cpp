// Workflow-engine benchmarks: what the queued-transaction saga machinery
// costs on top of plain enqueues, and how fast the outbox relay drains.
//
//  - BM_SagaChain/N: one N-step saga end to end — Start, then consumer
//    passes until the record is terminal. Every step's finish carries a
//    continuation, a WorkflowRecord update, and one outbox row, so this
//    prices the full Gray queued-transaction protocol per step.
//    Steps/sec is the gated throughput counter.
//  - BM_IndependentEnqueues/N: the control — the same N items as plain,
//    unchained enqueues through the same harness and consumer. The gap
//    between this and BM_SagaChain is the workflow tax.
//  - BM_OutboxRelayDrain: sagas fill the transactional outbox, then the
//    relay drains it into a SimEffectStore. Relay-side numbers are
//    ungated (trend-watching): apply throughput and the pre-drain lag.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>

#include "bench_report.h"

#include "external/outbox_relay.h"
#include "quick/consumer.h"
#include "workflow/workflow.h"
#include "workload/harness.h"

namespace quick {
namespace {

wl::HarnessOptions BenchHarnessOptions() {
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  return hopts;
}

core::ConsumerConfig BenchConsumerConfig() {
  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 4;
  return config;
}

/// An N-step saga whose steps do no work but each intend one outbox
/// effect — the protocol cost, not the handler cost.
wf::SagaSpec MakeBenchSaga(int steps) {
  wf::SagaSpec saga;
  saga.name = "bench";
  for (int i = 0; i < steps; ++i) {
    wf::StepSpec s;
    s.name = "s" + std::to_string(i);
    s.run = [i](core::WorkContext& ctx, wf::StepContext& sctx) {
      core::OutboxEffect e;
      e.target = "bench";
      e.idempotency_key = ctx.item.id + ".e" + std::to_string(i);
      e.payload = "x";
      sctx.effects.push_back(std::move(e));
      return Status::OK();
    };
    saga.steps.push_back(std::move(s));
  }
  return saga;
}

void BM_SagaChain(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  wl::Harness harness(BenchHarnessOptions());
  wf::WorkflowEngine engine(harness.quick(), harness.registry());
  if (!engine.RegisterSaga(MakeBenchSaga(steps)).ok()) {
    state.SkipWithError("saga registration failed");
    return;
  }
  auto consumer = harness.MakeConsumer(BenchConsumerConfig(), "bench-saga");
  const ck::DatabaseId db = harness.ClientDb(0);

  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto id = engine.Start(db, "bench", "p");
    if (!id.ok()) {
      state.SkipWithError("saga start failed");
      return;
    }
    for (;;) {
      auto r = engine.Load(db, *id);
      if (r.ok() && r->has_value() && (*r)->Terminal()) break;
      (void)consumer->RunOnePass("cluster0");
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double total_steps =
      static_cast<double>(state.iterations()) * steps;
  state.SetItemsProcessed(static_cast<int64_t>(total_steps));
  // Gated: saga steps are work items; regressions here are protocol cost.
  state.counters["throughput_items_per_sec"] =
      secs > 0 ? total_steps / secs : 0.0;
  state.counters["saga_completions_per_sec"] =
      secs > 0 ? static_cast<double>(state.iterations()) / secs : 0.0;
  state.counters["continuations_enqueued"] = static_cast<double>(
      consumer->stats().continuations_enqueued.Value());
  state.counters["outbox_effects_recorded"] = static_cast<double>(
      consumer->stats().outbox_effects_recorded.Value());
  bench::BenchReportCollector::Global()->ReportRun(
      "BM_SagaChain/" + std::to_string(steps) + "_steps", state, {});
}
// Fixed iteration counts: the benchmark body runs exactly once (no
// auto-tuning re-invocations), so each run reports once into the
// BENCH_*.json artifact.
BENCHMARK(BM_SagaChain)->Unit(benchmark::kMillisecond)->UseRealTime()
    ->Arg(3)->Arg(8)->Iterations(200);

void BM_IndependentEnqueues(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  wl::Harness harness(BenchHarnessOptions());
  auto consumer = harness.MakeConsumer(BenchConsumerConfig(), "bench-plain");

  const auto t0 = std::chrono::steady_clock::now();
  int64_t target = 0;
  for (auto _ : state) {
    if (!harness.EnqueueSim(0, steps).ok()) {
      state.SkipWithError("enqueue failed");
      return;
    }
    target += steps;
    while (harness.WorkExecuted() < target) {
      (void)consumer->RunOnePass("cluster0");
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double total = static_cast<double>(target);
  state.SetItemsProcessed(target);
  state.counters["throughput_items_per_sec"] =
      secs > 0 ? total / secs : 0.0;
  bench::BenchReportCollector::Global()->ReportRun(
      "BM_IndependentEnqueues/" + std::to_string(steps) + "_items", state,
      {});
}
BENCHMARK(BM_IndependentEnqueues)->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Arg(3)->Iterations(300);

void BM_OutboxRelayDrain(benchmark::State& state) {
  constexpr int kSagasPerRound = 8;
  constexpr int kSteps = 3;
  wl::Harness harness(BenchHarnessOptions());
  wf::WorkflowEngine engine(harness.quick(), harness.registry());
  if (!engine.RegisterSaga(MakeBenchSaga(kSteps)).ok()) {
    state.SkipWithError("saga registration failed");
    return;
  }
  auto consumer = harness.MakeConsumer(BenchConsumerConfig(), "bench-fill");
  ext::SimEffectStore store;
  ext::OutboxRelay relay(harness.cloudkit(), &store);
  const ck::DatabaseId db = harness.ClientDb(0);

  int64_t lag_max = 0;
  double drain_secs = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < kSagasPerRound; ++i) {
      auto id = engine.Start(db, "bench", "p");
      if (!id.ok()) {
        state.SkipWithError("saga start failed");
        return;
      }
      for (;;) {
        auto r = engine.Load(db, *id);
        if (r.ok() && r->has_value() && (*r)->Terminal()) break;
        (void)consumer->RunOnePass("cluster0");
      }
    }
    lag_max = std::max(lag_max, relay.Lag("cluster0").value_or(0));
    state.ResumeTiming();

    const auto d0 = std::chrono::steady_clock::now();
    for (;;) {
      auto visited = relay.RunOnePass("cluster0");
      if (!visited.ok()) {
        state.SkipWithError("relay pass failed");
        return;
      }
      if (*visited == 0) break;
    }
    drain_secs +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - d0)
            .count();
  }

  state.SetItemsProcessed(store.TotalApplied());
  // Relay-side: ungated, trend-watching (apply + ack are extra
  // transactions per row, not the queue's commit path).
  state.counters["outbox_effects_per_sec"] =
      drain_secs > 0
          ? static_cast<double>(relay.stats().effects_applied.Value()) /
                drain_secs
          : 0.0;
  state.counters["outbox_lag_rows_max"] = static_cast<double>(lag_max);
  state.counters["outbox_rows_acked"] =
      static_cast<double>(relay.stats().rows_acked.Value());
  state.counters["outbox_effects_deduped"] =
      static_cast<double>(relay.stats().effects_deduped.Value());
  bench::BenchReportCollector::Global()->ReportRun(
      "BM_OutboxRelayDrain/8x3", state, {});
}
BENCHMARK(BM_OutboxRelayDrain)->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Iterations(30);

}  // namespace
}  // namespace quick

QUICK_BENCH_MAIN("workflow_saga")
