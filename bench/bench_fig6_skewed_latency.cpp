// Figure 6: the Figure 5 setup under Pareto-skewed load (α = log₄5).
// Expected shape (paper §8): pointers are still picked up quickly and
// work-item medians stay low, but work-item tail latency (p99.9) is much
// higher — the "water-filling" scheduler spends bounded time per queue and
// returns to long queues later rather than draining them to completion.

#include "bench_common.h"

namespace quick::bench {
namespace {

void BM_Fig6_SkewedLatency(benchmark::State& state) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 1;
  wl::Harness harness(hopts);

  wl::LoadOptions lopts;
  lopts.num_clients = 150;
  lopts.rate_per_client_hz = 0.5;  // same aggregate as Figure 5
  lopts.items_per_enqueue = 1;
  lopts.skewed = true;  // Pareto(α = log₄5) per-client rates

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 1;
  config.sequential = true;

  for (auto _ : state) {
    wl::OpenLoopGenerator load(&harness, lopts);
    load.Start();
    auto consumer = harness.MakeConsumer(config, "fig6-consumer");
    consumer->Start();
    SleepMs(1000);
    consumer->stats().pointer_latency_micros.Reset();
    consumer->stats().item_latency_micros.Reset();
    SleepMs(4000);
    core::ConsumerStats& s = consumer->stats();
    state.counters["pointer_p50_ms"] =
        s.pointer_latency_micros.Percentile(0.50) / 1000.0;
    state.counters["pointer_p999_ms"] =
        s.pointer_latency_micros.Percentile(0.999) / 1000.0;
    state.counters["item_p50_ms"] =
        s.item_latency_micros.Percentile(0.50) / 1000.0;
    state.counters["item_p999_ms"] =
        s.item_latency_micros.Percentile(0.999) / 1000.0;
    state.counters["items_observed"] =
        static_cast<double>(s.item_latency_micros.Count());
    BenchReportCollector::Global()->ReportRun(
        "BM_Fig6_SkewedLatency", state,
        {{"pointer_latency_us", &s.pointer_latency_micros},
         {"item_latency_us", &s.item_latency_micros}});
    consumer->Stop();
    load.Stop();
  }
}

BENCHMARK(BM_Fig6_SkewedLatency)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("fig6_skewed_latency")
