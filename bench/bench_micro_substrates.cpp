// Micro-benchmarks of the substrates: tuple encoding, FDB simulator
// transactions, record-store operations, and queue-zone primitives. Not a
// paper figure — operational baselines for the layers everything above
// depends on.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <vector>

#include "bench_report.h"

#include "cloudkit/queue_zone.h"
#include "fdb/retry.h"
#include "reclayer/record_store.h"
#include "tuple/tuple.h"

namespace quick {
namespace {

void BM_TupleEncode(benchmark::State& state) {
  tup::Tuple t;
  t.AddString("user12345").AddInt(1234567).AddString("zone").AddInt(-42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Encode());
  }
}
BENCHMARK(BM_TupleEncode);

void BM_TupleDecode(benchmark::State& state) {
  tup::Tuple t;
  t.AddString("user12345").AddInt(1234567).AddString("zone").AddInt(-42);
  const std::string encoded = t.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tup::Tuple::Decode(encoded));
  }
}
BENCHMARK(BM_TupleDecode);

void BM_FdbSetCommit(benchmark::State& state) {
  fdb::Database db("bench");
  int64_t i = 0;
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    txn.Set("key" + std::to_string(i % 1000), "value");
    benchmark::DoNotOptimize(txn.Commit());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FdbSetCommit);

void BM_FdbGet(benchmark::State& state) {
  fdb::Database db("bench");
  {
    fdb::Transaction txn = db.CreateTransaction();
    for (int i = 0; i < 1000; ++i) {
      txn.Set("key" + std::to_string(i), "value");
    }
    (void)txn.Commit();
  }
  int64_t i = 0;
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    benchmark::DoNotOptimize(txn.Get("key" + std::to_string(i % 1000)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FdbGet);

void BM_FdbRangeScan100(benchmark::State& state) {
  fdb::Database db("bench");
  {
    fdb::Transaction txn = db.CreateTransaction();
    for (int i = 0; i < 1000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      txn.Set(key, "value");
    }
    (void)txn.Commit();
  }
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    fdb::RangeOptions opts;
    opts.limit = 100;
    benchmark::DoNotOptimize(txn.GetRange(KeyRange::Prefix("key"), opts));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FdbRangeScan100);

// Commit-path breakdown under concurrency: 8 blind writers against one
// cluster with a realistic replication latency, group commit on vs off.
// With batching the leader pays the latency once per batch, so throughput
// should rise well past 1/commit_micros per thread; avg_batch_size and
// commit_batches expose how much amortization actually happened.
void BM_FdbConcurrentCommit(benchmark::State& state) {
  const bool group = state.range(0) != 0;
  fdb::Database::Options opts;
  opts.enable_group_commit = group;
  opts.latency.commit_micros = 200;  // modeled replication round trip
  fdb::Database db("bench", opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, t] {
        for (int i = 0; i < kPerThread; ++i) {
          fdb::Transaction txn = db.CreateTransaction();
          txn.Set("k" + std::to_string(t) + "/" + std::to_string(i % 50), "v");
          benchmark::DoNotOptimize(txn.Commit());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const fdb::Database::Stats stats = db.GetStats();
  const int64_t commits = state.iterations() * kThreads * kPerThread;
  state.SetItemsProcessed(commits);
  state.counters["group_commit"] = group ? 1 : 0;
  state.counters["throughput_commits_per_sec"] =
      static_cast<double>(commits) / secs;
  state.counters["commit_batches"] =
      static_cast<double>(stats.commit_batches);
  state.counters["avg_batch_size"] =
      stats.commit_batches > 0
          ? static_cast<double>(stats.commits_succeeded) / stats.commit_batches
          : 0.0;
  bench::BenchReportCollector::Global()->ReportRun(
      std::string("BM_FdbConcurrentCommit/") + (group ? "group" : "single"),
      state);
}
BENCHMARK(BM_FdbConcurrentCommit)
    ->ArgNames({"group"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

rl::RecordMetadata BenchMetadata() {
  rl::RecordMetadata meta;
  rl::RecordTypeDef t;
  t.name = "Doc";
  t.fields = {{"id", rl::FieldType::kInt64}, {"rank", rl::FieldType::kInt64}};
  t.primary_key_fields = {"id"};
  (void)meta.AddRecordType(std::move(t));
  rl::IndexDef idx;
  idx.name = "by_rank";
  idx.fields = {"rank"};
  (void)meta.AddIndex(std::move(idx));
  return meta;
}

void BM_RecordSave(benchmark::State& state) {
  static const rl::RecordMetadata* meta = new rl::RecordMetadata(BenchMetadata());
  fdb::Database db("bench");
  const tup::Subspace subspace(tup::Tuple().AddString("s"));
  int64_t i = 0;
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    rl::RecordStore store(&txn, subspace, meta);
    rl::Record r("Doc");
    r.SetInt("id", i % 1000).SetInt("rank", i);
    benchmark::DoNotOptimize(store.SaveRecord(r));
    (void)txn.Commit();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordSave);

void BM_QueueZoneEnqueue(benchmark::State& state) {
  fdb::Database db("bench");
  const tup::Subspace subspace(tup::Tuple().AddString("qz"));
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    ck::QueueZone zone(&txn, subspace, SystemClock::Default());
    ck::QueuedItem item;
    item.job_type = "bench";
    benchmark::DoNotOptimize(zone.Enqueue(item, 0));
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueZoneEnqueue);

void BM_QueueZoneDequeueComplete(benchmark::State& state) {
  fdb::Database db("bench");
  const tup::Subspace subspace(tup::Tuple().AddString("qz"));
  // Pre-fill enough for the measured iterations.
  {
    Status st = fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
      ck::QueueZone zone(&txn, subspace, SystemClock::Default());
      for (int i = 0; i < 512; ++i) {
        ck::QueuedItem item;
        item.job_type = "bench";
        QUICK_RETURN_IF_ERROR(zone.Enqueue(item, 0).status());
      }
      return Status::OK();
    });
    (void)st;
  }
  int64_t refill = 0;
  for (auto _ : state) {
    fdb::Transaction txn = db.CreateTransaction();
    ck::QueueZone zone(&txn, subspace, SystemClock::Default());
    auto batch = zone.Dequeue(1, 10000);
    if (batch.ok() && !batch->empty()) {
      (void)zone.Complete((*batch)[0].item.id, (*batch)[0].lease_id);
    } else {
      // Refill outside the measured path would be nicer; keep it simple.
      ck::QueuedItem item;
      item.job_type = "bench";
      item.id = "refill" + std::to_string(refill++);
      (void)zone.Enqueue(item, 0);
    }
    (void)txn.Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueZoneDequeueComplete);

}  // namespace
}  // namespace quick

QUICK_BENCH_MAIN("micro_substrates")
