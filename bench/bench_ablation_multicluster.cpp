// Ablation A5 — cluster scaling: the paper evaluates a single FoundationDB
// cluster and argues the fleet scales because clusters are independent
// ("Since these clusters are independent, in this evaluation we've focused
// on QuiCK's performance with one cluster", §8). This bench verifies that
// independence: a fixed consumer pool spread over N clusters should see
// aggregate throughput roughly constant (consumer-bound) while per-cluster
// load — commits, conflicts — divides by N.

#include "bench_common.h"

namespace quick::bench {
namespace {

void BM_A5_ClusterScaling(benchmark::State& state) {
  QuietLogs();
  const int num_clusters = static_cast<int>(state.range(0));

  wl::HarnessOptions hopts;
  hopts.num_clusters = num_clusters;
  hopts.work_millis = 1;
  wl::Harness harness(hopts);

  constexpr int kClients = 128;
  wl::SaturationFeeder feeder(&harness, kClients, /*items_per_enqueue=*/2,
                              /*num_threads=*/4);
  feeder.Start(4);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 2;

  for (auto _ : state) {
    auto consumers = StartConsumers(&harness, 4, config);
    SleepMs(500);
    const int64_t before = harness.WorkExecuted();
    std::vector<fdb::Database::Stats> before_stats;
    for (const std::string& name : harness.cluster_names()) {
      before_stats.push_back(
          harness.cloudkit()->clusters()->Get(name)->GetStats());
    }
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(2000);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const int64_t after = harness.WorkExecuted();
    StopConsumers(consumers);

    int64_t total_commits = 0;
    int64_t max_cluster_commits = 0;
    for (size_t i = 0; i < harness.cluster_names().size(); ++i) {
      fdb::Database::Stats now_stats =
          harness.cloudkit()
              ->clusters()
              ->Get(harness.cluster_names()[i])
              ->GetStats();
      const int64_t commits =
          now_stats.commits_succeeded - before_stats[i].commits_succeeded;
      total_commits += commits;
      max_cluster_commits = std::max(max_cluster_commits, commits);
    }
    state.counters["clusters"] = num_clusters;
    state.counters["throughput_items_per_sec"] = (after - before) / secs;
    state.counters["hottest_cluster_commit_share_pct"] =
        100.0 * max_cluster_commits / std::max<int64_t>(1, total_commits);
    BenchReportCollector::Global()->ReportRun(
        "BM_A5_ClusterScaling/" + std::to_string(num_clusters), state);
  }
  feeder.Stop();
}

BENCHMARK(BM_A5_ClusterScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_multicluster")
