// Ablation A3 — read-version caching / causal-read-risky: with the
// paper-like latency model (GRV ~2ms, commit ~13ms), QuiCK uses cached read
// versions and causal_read_risky for peeks and obtain-lease transactions
// (§6 "Isolation level"). This bench measures pointer-pickup latency and
// GRV traffic with the optimization on vs off.

#include "bench_common.h"

namespace quick::bench {
namespace {

void RunVersionCache(benchmark::State& state, bool relaxed) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.work_millis = 1;
  hopts.latency = fdb::LatencyModel::PaperLike();
  hopts.grv_cache_staleness_millis = 50;
  wl::Harness harness(hopts);

  constexpr int kClients = 64;
  wl::SaturationFeeder feeder(&harness, kClients, /*items_per_enqueue=*/1,
                              /*num_threads=*/4);
  feeder.Start(2);

  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 1;
  config.relaxed_reads_for_peek = relaxed;

  for (auto _ : state) {
    auto consumers = StartConsumers(&harness, 2, config);
    SleepMs(500);
    fdb::Database* db = harness.cloudkit()->clusters()->Get("cluster0");
    fdb::Database::Stats before = db->GetStats();
    const int64_t work_before = harness.WorkExecuted();
    for (auto& c : consumers) c->stats().pointer_latency_micros.Reset();
    const auto t0 = std::chrono::steady_clock::now();
    SleepMs(2500);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    fdb::Database::Stats after = db->GetStats();
    PoolStats stats;
    Collect(consumers, &stats);
    StopConsumers(consumers);

    state.counters["pointer_p50_ms"] =
        stats.pointer_latency_micros.Percentile(0.50) / 1000.0;
    state.counters["pointer_p999_ms"] =
        stats.pointer_latency_micros.Percentile(0.999) / 1000.0;
    state.counters["grv_calls"] =
        static_cast<double>(after.grv_calls - before.grv_calls);
    state.counters["grv_cache_hits"] =
        static_cast<double>(after.grv_cache_hits - before.grv_cache_hits);
    state.counters["throughput_items_per_sec"] =
        (harness.WorkExecuted() - work_before) / secs;
    BenchReportCollector::Global()->ReportRun(
        relaxed ? "BM_A3_RelaxedReads" : "BM_A3_StrictGrvEveryTxn", state, {{"pointer_latency_us", &stats.pointer_latency_micros}});
  }
  feeder.Stop();
}

void BM_A3_RelaxedReads(benchmark::State& state) {
  RunVersionCache(state, /*relaxed=*/true);
}

void BM_A3_StrictGrvEveryTxn(benchmark::State& state) {
  RunVersionCache(state, /*relaxed=*/false);
}

BENCHMARK(BM_A3_RelaxedReads)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_A3_StrictGrvEveryTxn)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_version_cache")
