// Ablation A2 — enqueue protocol: QuiCK's two-part enqueue reads only the
// pointer-index key (updated on create/delete, never on pointer updates),
// so enqueues do not conflict with consumers leasing/requeueing pointers.
// The naive alternative — every enqueue reads and rewrites the pointer
// record to refresh its vesting time — conflicts with consumers and with
// other enqueues. The paper rejects the naive design in §6 ("this would
// generate unnecessary database writes and cause significant contention");
// this bench quantifies the abort-rate gap on user-facing enqueues.

#include "bench_common.h"

#include "fdb/retry.h"

namespace quick::bench {
namespace {

/// Naive enqueue: item write + unconditional pointer read-modify-write.
Status NaiveEnqueue(wl::Harness* harness, int client) {
  core::Quick* quick = harness->quick();
  const ck::DatabaseId db_id = harness->ClientDb(client);
  const ck::DatabaseRef db = harness->cloudkit()->OpenDatabase(db_id);
  const ck::DatabaseRef cluster_db =
      harness->cloudkit()->OpenClusterDb(db.cluster->name());
  const core::Pointer pointer{db_id, quick->config().queue_zone_name};

  fdb::Transaction txn = db.cluster->CreateTransaction();
  ck::QueueZone tenant_zone = quick->OpenTenantZone(db, &txn);
  ck::QueuedItem item;
  item.job_type = wl::kSimJobType;
  QUICK_RETURN_IF_ERROR(tenant_zone.Enqueue(item, 0).status());

  ck::QueueZone top_zone = quick->OpenTopZone(cluster_db, &txn);
  Result<std::optional<ck::QueuedItem>> loaded = top_zone.Load(pointer.Key());
  QUICK_RETURN_IF_ERROR(loaded.status());
  if (loaded->has_value()) {
    ck::QueuedItem p = **loaded;
    p.vesting_time = SystemClock::Default()->NowMillis();  // always rewrite
    QUICK_RETURN_IF_ERROR(top_zone.SaveItem(p));
  } else {
    ck::QueuedItem p = pointer.ToItem();
    p.last_active_time = SystemClock::Default()->NowMillis();
    QUICK_RETURN_IF_ERROR(top_zone.Enqueue(std::move(p), 0).status());
  }
  return txn.Commit();
}

/// QuiCK enqueue, single attempt (so aborts are observable).
Status QuickEnqueueOnce(wl::Harness* harness, int client) {
  core::Quick* quick = harness->quick();
  const ck::DatabaseId db_id = harness->ClientDb(client);
  const ck::DatabaseRef db = harness->cloudkit()->OpenDatabase(db_id);
  fdb::Transaction txn = db.cluster->CreateTransaction();
  core::WorkItem item;
  item.job_type = wl::kSimJobType;
  core::EnqueueFollowUp follow_up;
  QUICK_RETURN_IF_ERROR(
      quick->EnqueueInTransaction(&txn, db, item, 0, &follow_up).status());
  Status st = txn.Commit();
  if (st.ok()) quick->ExecuteFollowUp(db, follow_up);
  return st;
}

void RunProtocol(benchmark::State& state, bool naive) {
  QuietLogs();
  wl::HarnessOptions hopts;
  hopts.work_millis = 1;
  wl::Harness harness(hopts);

  // Few hot tenants so enqueues and consumers touch the same pointers.
  constexpr int kClients = 4;
  core::ConsumerConfig config = BenchConsumerConfig();
  config.dequeue_max = 1;
  config.sequential = false;
  config.selection_frac = 1.0;

  for (auto _ : state) {
    auto consumers = StartConsumers(&harness, 2, config);
    std::atomic<int64_t> attempts{0};
    std::atomic<int64_t> aborts{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> enqueuers;
    for (int t = 0; t < 4; ++t) {
      enqueuers.emplace_back([&, t] {
        Random rng(t);
        while (!stop.load()) {
          const int client = static_cast<int>(rng.Uniform(kClients));
          Status st = naive ? NaiveEnqueue(&harness, client)
                            : QuickEnqueueOnce(&harness, client);
          attempts.fetch_add(1);
          if (st.IsNotCommitted()) aborts.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }
    SleepMs(2500);
    stop.store(true);
    for (auto& t : enqueuers) t.join();
    StopConsumers(consumers);

    state.counters["enqueue_attempts"] = static_cast<double>(attempts.load());
    state.counters["enqueue_abort_pct"] =
        100.0 * aborts.load() / std::max<int64_t>(1, attempts.load());
    BenchReportCollector::Global()->ReportRun(
        naive ? "BM_A2_NaivePointerRewrite" : "BM_A2_QuickEnqueueProtocol",
        state);
  }
}

void BM_A2_QuickEnqueueProtocol(benchmark::State& state) {
  RunProtocol(state, /*naive=*/false);
}

void BM_A2_NaivePointerRewrite(benchmark::State& state) {
  RunProtocol(state, /*naive=*/true);
}

BENCHMARK(BM_A2_QuickEnqueueProtocol)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_A2_NaivePointerRewrite)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace quick::bench

QUICK_BENCH_MAIN("ablation_enqueue_protocol")
