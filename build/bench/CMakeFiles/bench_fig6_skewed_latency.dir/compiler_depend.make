# Empty compiler generated dependencies file for bench_fig6_skewed_latency.
# This may be replaced when dependencies are built.
