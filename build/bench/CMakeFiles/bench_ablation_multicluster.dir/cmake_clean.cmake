file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multicluster.dir/bench_ablation_multicluster.cpp.o"
  "CMakeFiles/bench_ablation_multicluster.dir/bench_ablation_multicluster.cpp.o.d"
  "bench_ablation_multicluster"
  "bench_ablation_multicluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multicluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
