# Empty dependencies file for bench_ablation_multicluster.
# This may be replaced when dependencies are built.
