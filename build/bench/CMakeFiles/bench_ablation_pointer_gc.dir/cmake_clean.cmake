file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pointer_gc.dir/bench_ablation_pointer_gc.cpp.o"
  "CMakeFiles/bench_ablation_pointer_gc.dir/bench_ablation_pointer_gc.cpp.o.d"
  "bench_ablation_pointer_gc"
  "bench_ablation_pointer_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pointer_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
