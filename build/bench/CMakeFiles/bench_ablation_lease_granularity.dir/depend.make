# Empty dependencies file for bench_ablation_lease_granularity.
# This may be replaced when dependencies are built.
