
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_lease_granularity.cpp" "bench/CMakeFiles/bench_ablation_lease_granularity.dir/bench_ablation_lease_granularity.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_lease_granularity.dir/bench_ablation_lease_granularity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/quick_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/quick/CMakeFiles/quick_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudkit/CMakeFiles/quick_cloudkit.dir/DependInfo.cmake"
  "/root/repo/build/src/reclayer/CMakeFiles/quick_reclayer.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
