# Empty dependencies file for bench_fig7_contention.
# This may be replaced when dependencies are built.
