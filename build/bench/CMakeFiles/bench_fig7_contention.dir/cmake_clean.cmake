file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_contention.dir/bench_fig7_contention.cpp.o"
  "CMakeFiles/bench_fig7_contention.dir/bench_fig7_contention.cpp.o.d"
  "bench_fig7_contention"
  "bench_fig7_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
