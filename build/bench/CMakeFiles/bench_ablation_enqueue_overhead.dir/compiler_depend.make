# Empty compiler generated dependencies file for bench_ablation_enqueue_overhead.
# This may be replaced when dependencies are built.
