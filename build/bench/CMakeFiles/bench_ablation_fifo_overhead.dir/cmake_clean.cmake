file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fifo_overhead.dir/bench_ablation_fifo_overhead.cpp.o"
  "CMakeFiles/bench_ablation_fifo_overhead.dir/bench_ablation_fifo_overhead.cpp.o.d"
  "bench_ablation_fifo_overhead"
  "bench_ablation_fifo_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fifo_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
