# Empty dependencies file for bench_ablation_fifo_overhead.
# This may be replaced when dependencies are built.
