# Empty compiler generated dependencies file for quick_common.
# This may be replaced when dependencies are built.
