file(REMOVE_RECURSE
  "libquick_common.a"
)
