file(REMOVE_RECURSE
  "CMakeFiles/quick_common.dir/bytes.cc.o"
  "CMakeFiles/quick_common.dir/bytes.cc.o.d"
  "CMakeFiles/quick_common.dir/clock.cc.o"
  "CMakeFiles/quick_common.dir/clock.cc.o.d"
  "CMakeFiles/quick_common.dir/histogram.cc.o"
  "CMakeFiles/quick_common.dir/histogram.cc.o.d"
  "CMakeFiles/quick_common.dir/metrics.cc.o"
  "CMakeFiles/quick_common.dir/metrics.cc.o.d"
  "CMakeFiles/quick_common.dir/random.cc.o"
  "CMakeFiles/quick_common.dir/random.cc.o.d"
  "CMakeFiles/quick_common.dir/status.cc.o"
  "CMakeFiles/quick_common.dir/status.cc.o.d"
  "CMakeFiles/quick_common.dir/thread_pool.cc.o"
  "CMakeFiles/quick_common.dir/thread_pool.cc.o.d"
  "libquick_common.a"
  "libquick_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
