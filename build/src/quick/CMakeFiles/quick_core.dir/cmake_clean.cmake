file(REMOVE_RECURSE
  "CMakeFiles/quick_core.dir/admin.cc.o"
  "CMakeFiles/quick_core.dir/admin.cc.o.d"
  "CMakeFiles/quick_core.dir/alerts.cc.o"
  "CMakeFiles/quick_core.dir/alerts.cc.o.d"
  "CMakeFiles/quick_core.dir/consumer.cc.o"
  "CMakeFiles/quick_core.dir/consumer.cc.o.d"
  "CMakeFiles/quick_core.dir/pointer.cc.o"
  "CMakeFiles/quick_core.dir/pointer.cc.o.d"
  "CMakeFiles/quick_core.dir/quick.cc.o"
  "CMakeFiles/quick_core.dir/quick.cc.o.d"
  "libquick_core.a"
  "libquick_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
