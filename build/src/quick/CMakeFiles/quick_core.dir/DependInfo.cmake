
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quick/admin.cc" "src/quick/CMakeFiles/quick_core.dir/admin.cc.o" "gcc" "src/quick/CMakeFiles/quick_core.dir/admin.cc.o.d"
  "/root/repo/src/quick/alerts.cc" "src/quick/CMakeFiles/quick_core.dir/alerts.cc.o" "gcc" "src/quick/CMakeFiles/quick_core.dir/alerts.cc.o.d"
  "/root/repo/src/quick/consumer.cc" "src/quick/CMakeFiles/quick_core.dir/consumer.cc.o" "gcc" "src/quick/CMakeFiles/quick_core.dir/consumer.cc.o.d"
  "/root/repo/src/quick/pointer.cc" "src/quick/CMakeFiles/quick_core.dir/pointer.cc.o" "gcc" "src/quick/CMakeFiles/quick_core.dir/pointer.cc.o.d"
  "/root/repo/src/quick/quick.cc" "src/quick/CMakeFiles/quick_core.dir/quick.cc.o" "gcc" "src/quick/CMakeFiles/quick_core.dir/quick.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloudkit/CMakeFiles/quick_cloudkit.dir/DependInfo.cmake"
  "/root/repo/build/src/reclayer/CMakeFiles/quick_reclayer.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
