# Empty compiler generated dependencies file for quick_core.
# This may be replaced when dependencies are built.
