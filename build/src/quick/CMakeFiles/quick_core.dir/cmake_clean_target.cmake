file(REMOVE_RECURSE
  "libquick_core.a"
)
