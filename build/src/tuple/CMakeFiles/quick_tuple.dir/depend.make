# Empty dependencies file for quick_tuple.
# This may be replaced when dependencies are built.
