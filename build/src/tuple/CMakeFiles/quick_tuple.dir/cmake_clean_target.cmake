file(REMOVE_RECURSE
  "libquick_tuple.a"
)
