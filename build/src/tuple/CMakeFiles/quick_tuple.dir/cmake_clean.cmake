file(REMOVE_RECURSE
  "CMakeFiles/quick_tuple.dir/subspace.cc.o"
  "CMakeFiles/quick_tuple.dir/subspace.cc.o.d"
  "CMakeFiles/quick_tuple.dir/tuple.cc.o"
  "CMakeFiles/quick_tuple.dir/tuple.cc.o.d"
  "libquick_tuple.a"
  "libquick_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
