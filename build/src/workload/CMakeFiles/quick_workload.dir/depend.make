# Empty dependencies file for quick_workload.
# This may be replaced when dependencies are built.
