file(REMOVE_RECURSE
  "libquick_workload.a"
)
