file(REMOVE_RECURSE
  "CMakeFiles/quick_workload.dir/harness.cc.o"
  "CMakeFiles/quick_workload.dir/harness.cc.o.d"
  "libquick_workload.a"
  "libquick_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
