
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reclayer/metadata.cc" "src/reclayer/CMakeFiles/quick_reclayer.dir/metadata.cc.o" "gcc" "src/reclayer/CMakeFiles/quick_reclayer.dir/metadata.cc.o.d"
  "/root/repo/src/reclayer/online_index_builder.cc" "src/reclayer/CMakeFiles/quick_reclayer.dir/online_index_builder.cc.o" "gcc" "src/reclayer/CMakeFiles/quick_reclayer.dir/online_index_builder.cc.o.d"
  "/root/repo/src/reclayer/query_planner.cc" "src/reclayer/CMakeFiles/quick_reclayer.dir/query_planner.cc.o" "gcc" "src/reclayer/CMakeFiles/quick_reclayer.dir/query_planner.cc.o.d"
  "/root/repo/src/reclayer/record.cc" "src/reclayer/CMakeFiles/quick_reclayer.dir/record.cc.o" "gcc" "src/reclayer/CMakeFiles/quick_reclayer.dir/record.cc.o.d"
  "/root/repo/src/reclayer/record_store.cc" "src/reclayer/CMakeFiles/quick_reclayer.dir/record_store.cc.o" "gcc" "src/reclayer/CMakeFiles/quick_reclayer.dir/record_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
