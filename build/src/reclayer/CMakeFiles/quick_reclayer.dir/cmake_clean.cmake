file(REMOVE_RECURSE
  "CMakeFiles/quick_reclayer.dir/metadata.cc.o"
  "CMakeFiles/quick_reclayer.dir/metadata.cc.o.d"
  "CMakeFiles/quick_reclayer.dir/online_index_builder.cc.o"
  "CMakeFiles/quick_reclayer.dir/online_index_builder.cc.o.d"
  "CMakeFiles/quick_reclayer.dir/query_planner.cc.o"
  "CMakeFiles/quick_reclayer.dir/query_planner.cc.o.d"
  "CMakeFiles/quick_reclayer.dir/record.cc.o"
  "CMakeFiles/quick_reclayer.dir/record.cc.o.d"
  "CMakeFiles/quick_reclayer.dir/record_store.cc.o"
  "CMakeFiles/quick_reclayer.dir/record_store.cc.o.d"
  "libquick_reclayer.a"
  "libquick_reclayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_reclayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
