file(REMOVE_RECURSE
  "libquick_reclayer.a"
)
