# Empty compiler generated dependencies file for quick_reclayer.
# This may be replaced when dependencies are built.
