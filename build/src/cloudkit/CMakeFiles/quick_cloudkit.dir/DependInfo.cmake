
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloudkit/database_id.cc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/database_id.cc.o" "gcc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/database_id.cc.o.d"
  "/root/repo/src/cloudkit/placement.cc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/placement.cc.o" "gcc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/placement.cc.o.d"
  "/root/repo/src/cloudkit/queue_zone.cc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/queue_zone.cc.o" "gcc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/queue_zone.cc.o.d"
  "/root/repo/src/cloudkit/queued_item.cc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/queued_item.cc.o" "gcc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/queued_item.cc.o.d"
  "/root/repo/src/cloudkit/service.cc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/service.cc.o" "gcc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/service.cc.o.d"
  "/root/repo/src/cloudkit/zone_catalog.cc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/zone_catalog.cc.o" "gcc" "src/cloudkit/CMakeFiles/quick_cloudkit.dir/zone_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reclayer/CMakeFiles/quick_reclayer.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
