file(REMOVE_RECURSE
  "libquick_cloudkit.a"
)
