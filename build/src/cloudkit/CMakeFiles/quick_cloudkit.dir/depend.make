# Empty dependencies file for quick_cloudkit.
# This may be replaced when dependencies are built.
