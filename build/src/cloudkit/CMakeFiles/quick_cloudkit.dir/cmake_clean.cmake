file(REMOVE_RECURSE
  "CMakeFiles/quick_cloudkit.dir/database_id.cc.o"
  "CMakeFiles/quick_cloudkit.dir/database_id.cc.o.d"
  "CMakeFiles/quick_cloudkit.dir/placement.cc.o"
  "CMakeFiles/quick_cloudkit.dir/placement.cc.o.d"
  "CMakeFiles/quick_cloudkit.dir/queue_zone.cc.o"
  "CMakeFiles/quick_cloudkit.dir/queue_zone.cc.o.d"
  "CMakeFiles/quick_cloudkit.dir/queued_item.cc.o"
  "CMakeFiles/quick_cloudkit.dir/queued_item.cc.o.d"
  "CMakeFiles/quick_cloudkit.dir/service.cc.o"
  "CMakeFiles/quick_cloudkit.dir/service.cc.o.d"
  "CMakeFiles/quick_cloudkit.dir/zone_catalog.cc.o"
  "CMakeFiles/quick_cloudkit.dir/zone_catalog.cc.o.d"
  "libquick_cloudkit.a"
  "libquick_cloudkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_cloudkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
