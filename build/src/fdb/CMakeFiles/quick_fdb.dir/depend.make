# Empty dependencies file for quick_fdb.
# This may be replaced when dependencies are built.
