file(REMOVE_RECURSE
  "CMakeFiles/quick_fdb.dir/conflict_tracker.cc.o"
  "CMakeFiles/quick_fdb.dir/conflict_tracker.cc.o.d"
  "CMakeFiles/quick_fdb.dir/database.cc.o"
  "CMakeFiles/quick_fdb.dir/database.cc.o.d"
  "CMakeFiles/quick_fdb.dir/transaction.cc.o"
  "CMakeFiles/quick_fdb.dir/transaction.cc.o.d"
  "CMakeFiles/quick_fdb.dir/versioned_store.cc.o"
  "CMakeFiles/quick_fdb.dir/versioned_store.cc.o.d"
  "libquick_fdb.a"
  "libquick_fdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_fdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
