file(REMOVE_RECURSE
  "libquick_fdb.a"
)
