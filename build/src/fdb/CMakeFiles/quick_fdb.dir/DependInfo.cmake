
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fdb/conflict_tracker.cc" "src/fdb/CMakeFiles/quick_fdb.dir/conflict_tracker.cc.o" "gcc" "src/fdb/CMakeFiles/quick_fdb.dir/conflict_tracker.cc.o.d"
  "/root/repo/src/fdb/database.cc" "src/fdb/CMakeFiles/quick_fdb.dir/database.cc.o" "gcc" "src/fdb/CMakeFiles/quick_fdb.dir/database.cc.o.d"
  "/root/repo/src/fdb/transaction.cc" "src/fdb/CMakeFiles/quick_fdb.dir/transaction.cc.o" "gcc" "src/fdb/CMakeFiles/quick_fdb.dir/transaction.cc.o.d"
  "/root/repo/src/fdb/versioned_store.cc" "src/fdb/CMakeFiles/quick_fdb.dir/versioned_store.cc.o" "gcc" "src/fdb/CMakeFiles/quick_fdb.dir/versioned_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
