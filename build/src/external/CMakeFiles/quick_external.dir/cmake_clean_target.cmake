file(REMOVE_RECURSE
  "libquick_external.a"
)
