file(REMOVE_RECURSE
  "CMakeFiles/quick_external.dir/external_queue.cc.o"
  "CMakeFiles/quick_external.dir/external_queue.cc.o.d"
  "CMakeFiles/quick_external.dir/external_store.cc.o"
  "CMakeFiles/quick_external.dir/external_store.cc.o.d"
  "libquick_external.a"
  "libquick_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
