# Empty compiler generated dependencies file for quick_external.
# This may be replaced when dependencies are built.
