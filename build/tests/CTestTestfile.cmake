# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tuple_test[1]_include.cmake")
include("/root/repo/build/tests/reclayer_test[1]_include.cmake")
include("/root/repo/build/tests/cloudkit_test[1]_include.cmake")
include("/root/repo/build/tests/quick_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/external_test[1]_include.cmake")
include("/root/repo/build/tests/fdb_test[1]_include.cmake")
