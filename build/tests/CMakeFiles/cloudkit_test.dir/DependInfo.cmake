
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloudkit/database_id_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/database_id_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/database_id_test.cc.o.d"
  "/root/repo/tests/cloudkit/fifo_zone_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/fifo_zone_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/fifo_zone_test.cc.o.d"
  "/root/repo/tests/cloudkit/placement_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/placement_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/placement_test.cc.o.d"
  "/root/repo/tests/cloudkit/queue_order_property_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/queue_order_property_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/queue_order_property_test.cc.o.d"
  "/root/repo/tests/cloudkit/queue_zone_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/queue_zone_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/queue_zone_test.cc.o.d"
  "/root/repo/tests/cloudkit/service_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/service_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/service_test.cc.o.d"
  "/root/repo/tests/cloudkit/zone_catalog_test.cc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/zone_catalog_test.cc.o" "gcc" "tests/CMakeFiles/cloudkit_test.dir/cloudkit/zone_catalog_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloudkit/CMakeFiles/quick_cloudkit.dir/DependInfo.cmake"
  "/root/repo/build/src/reclayer/CMakeFiles/quick_reclayer.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
