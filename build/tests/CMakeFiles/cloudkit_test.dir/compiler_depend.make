# Empty compiler generated dependencies file for cloudkit_test.
# This may be replaced when dependencies are built.
