file(REMOVE_RECURSE
  "CMakeFiles/cloudkit_test.dir/cloudkit/database_id_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/database_id_test.cc.o.d"
  "CMakeFiles/cloudkit_test.dir/cloudkit/fifo_zone_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/fifo_zone_test.cc.o.d"
  "CMakeFiles/cloudkit_test.dir/cloudkit/placement_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/placement_test.cc.o.d"
  "CMakeFiles/cloudkit_test.dir/cloudkit/queue_order_property_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/queue_order_property_test.cc.o.d"
  "CMakeFiles/cloudkit_test.dir/cloudkit/queue_zone_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/queue_zone_test.cc.o.d"
  "CMakeFiles/cloudkit_test.dir/cloudkit/service_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/service_test.cc.o.d"
  "CMakeFiles/cloudkit_test.dir/cloudkit/zone_catalog_test.cc.o"
  "CMakeFiles/cloudkit_test.dir/cloudkit/zone_catalog_test.cc.o.d"
  "cloudkit_test"
  "cloudkit_test.pdb"
  "cloudkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
