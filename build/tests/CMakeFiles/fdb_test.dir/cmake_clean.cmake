file(REMOVE_RECURSE
  "CMakeFiles/fdb_test.dir/fdb/conflict_matrix_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/conflict_matrix_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/conflict_tracker_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/conflict_tracker_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/database_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/database_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/edge_cases_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/edge_cases_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/key_selector_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/key_selector_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/retry_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/retry_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/serializability_property_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/serializability_property_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/transaction_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/transaction_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/versioned_store_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/versioned_store_test.cc.o.d"
  "CMakeFiles/fdb_test.dir/fdb/versionstamp_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb/versionstamp_test.cc.o.d"
  "fdb_test"
  "fdb_test.pdb"
  "fdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
