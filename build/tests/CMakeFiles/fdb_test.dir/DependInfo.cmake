
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fdb/conflict_matrix_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/conflict_matrix_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/conflict_matrix_test.cc.o.d"
  "/root/repo/tests/fdb/conflict_tracker_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/conflict_tracker_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/conflict_tracker_test.cc.o.d"
  "/root/repo/tests/fdb/database_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/database_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/database_test.cc.o.d"
  "/root/repo/tests/fdb/edge_cases_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/edge_cases_test.cc.o.d"
  "/root/repo/tests/fdb/key_selector_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/key_selector_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/key_selector_test.cc.o.d"
  "/root/repo/tests/fdb/retry_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/retry_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/retry_test.cc.o.d"
  "/root/repo/tests/fdb/serializability_property_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/serializability_property_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/serializability_property_test.cc.o.d"
  "/root/repo/tests/fdb/transaction_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/transaction_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/transaction_test.cc.o.d"
  "/root/repo/tests/fdb/versioned_store_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/versioned_store_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/versioned_store_test.cc.o.d"
  "/root/repo/tests/fdb/versionstamp_test.cc" "tests/CMakeFiles/fdb_test.dir/fdb/versionstamp_test.cc.o" "gcc" "tests/CMakeFiles/fdb_test.dir/fdb/versionstamp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
