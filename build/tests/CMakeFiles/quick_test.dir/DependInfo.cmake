
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/quick/admin_test.cc" "tests/CMakeFiles/quick_test.dir/quick/admin_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/admin_test.cc.o.d"
  "/root/repo/tests/quick/alerts_test.cc" "tests/CMakeFiles/quick_test.dir/quick/alerts_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/alerts_test.cc.o.d"
  "/root/repo/tests/quick/api_extensions_test.cc" "tests/CMakeFiles/quick_test.dir/quick/api_extensions_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/api_extensions_test.cc.o.d"
  "/root/repo/tests/quick/chaos_property_test.cc" "tests/CMakeFiles/quick_test.dir/quick/chaos_property_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/chaos_property_test.cc.o.d"
  "/root/repo/tests/quick/consumer_test.cc" "tests/CMakeFiles/quick_test.dir/quick/consumer_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/consumer_test.cc.o.d"
  "/root/repo/tests/quick/correctness_test.cc" "tests/CMakeFiles/quick_test.dir/quick/correctness_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/correctness_test.cc.o.d"
  "/root/repo/tests/quick/enqueue_test.cc" "tests/CMakeFiles/quick_test.dir/quick/enqueue_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/enqueue_test.cc.o.d"
  "/root/repo/tests/quick/fifo_consumer_test.cc" "tests/CMakeFiles/quick_test.dir/quick/fifo_consumer_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/fifo_consumer_test.cc.o.d"
  "/root/repo/tests/quick/lease_cache_test.cc" "tests/CMakeFiles/quick_test.dir/quick/lease_cache_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/lease_cache_test.cc.o.d"
  "/root/repo/tests/quick/migration_test.cc" "tests/CMakeFiles/quick_test.dir/quick/migration_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/migration_test.cc.o.d"
  "/root/repo/tests/quick/pointer_test.cc" "tests/CMakeFiles/quick_test.dir/quick/pointer_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/pointer_test.cc.o.d"
  "/root/repo/tests/quick/sharded_top_queue_test.cc" "tests/CMakeFiles/quick_test.dir/quick/sharded_top_queue_test.cc.o" "gcc" "tests/CMakeFiles/quick_test.dir/quick/sharded_top_queue_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quick/CMakeFiles/quick_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudkit/CMakeFiles/quick_cloudkit.dir/DependInfo.cmake"
  "/root/repo/build/src/reclayer/CMakeFiles/quick_reclayer.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
