file(REMOVE_RECURSE
  "CMakeFiles/quick_test.dir/quick/admin_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/admin_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/alerts_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/alerts_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/api_extensions_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/api_extensions_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/chaos_property_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/chaos_property_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/consumer_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/consumer_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/correctness_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/correctness_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/enqueue_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/enqueue_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/fifo_consumer_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/fifo_consumer_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/lease_cache_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/lease_cache_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/migration_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/migration_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/pointer_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/pointer_test.cc.o.d"
  "CMakeFiles/quick_test.dir/quick/sharded_top_queue_test.cc.o"
  "CMakeFiles/quick_test.dir/quick/sharded_top_queue_test.cc.o.d"
  "quick_test"
  "quick_test.pdb"
  "quick_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
