# Empty compiler generated dependencies file for quick_test.
# This may be replaced when dependencies are built.
