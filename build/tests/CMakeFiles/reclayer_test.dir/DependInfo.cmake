
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reclayer/index_property_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/index_property_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/index_property_test.cc.o.d"
  "/root/repo/tests/reclayer/metadata_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/metadata_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/metadata_test.cc.o.d"
  "/root/repo/tests/reclayer/online_index_builder_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/online_index_builder_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/online_index_builder_test.cc.o.d"
  "/root/repo/tests/reclayer/query_planner_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/query_planner_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/query_planner_test.cc.o.d"
  "/root/repo/tests/reclayer/record_store_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/record_store_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/record_store_test.cc.o.d"
  "/root/repo/tests/reclayer/record_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/record_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/record_test.cc.o.d"
  "/root/repo/tests/reclayer/version_index_test.cc" "tests/CMakeFiles/reclayer_test.dir/reclayer/version_index_test.cc.o" "gcc" "tests/CMakeFiles/reclayer_test.dir/reclayer/version_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reclayer/CMakeFiles/quick_reclayer.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/quick_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/quick_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
