file(REMOVE_RECURSE
  "CMakeFiles/reclayer_test.dir/reclayer/index_property_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/index_property_test.cc.o.d"
  "CMakeFiles/reclayer_test.dir/reclayer/metadata_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/metadata_test.cc.o.d"
  "CMakeFiles/reclayer_test.dir/reclayer/online_index_builder_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/online_index_builder_test.cc.o.d"
  "CMakeFiles/reclayer_test.dir/reclayer/query_planner_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/query_planner_test.cc.o.d"
  "CMakeFiles/reclayer_test.dir/reclayer/record_store_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/record_store_test.cc.o.d"
  "CMakeFiles/reclayer_test.dir/reclayer/record_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/record_test.cc.o.d"
  "CMakeFiles/reclayer_test.dir/reclayer/version_index_test.cc.o"
  "CMakeFiles/reclayer_test.dir/reclayer/version_index_test.cc.o.d"
  "reclayer_test"
  "reclayer_test.pdb"
  "reclayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
