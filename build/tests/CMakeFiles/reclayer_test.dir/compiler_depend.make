# Empty compiler generated dependencies file for reclayer_test.
# This may be replaced when dependencies are built.
