file(REMOVE_RECURSE
  "CMakeFiles/external_test.dir/external/external_queue_test.cc.o"
  "CMakeFiles/external_test.dir/external/external_queue_test.cc.o.d"
  "CMakeFiles/external_test.dir/external/external_store_test.cc.o"
  "CMakeFiles/external_test.dir/external/external_store_test.cc.o.d"
  "external_test"
  "external_test.pdb"
  "external_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
