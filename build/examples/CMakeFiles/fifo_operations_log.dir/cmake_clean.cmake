file(REMOVE_RECURSE
  "CMakeFiles/fifo_operations_log.dir/fifo_operations_log.cpp.o"
  "CMakeFiles/fifo_operations_log.dir/fifo_operations_log.cpp.o.d"
  "fifo_operations_log"
  "fifo_operations_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_operations_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
