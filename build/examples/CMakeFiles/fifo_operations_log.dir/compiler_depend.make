# Empty compiler generated dependencies file for fifo_operations_log.
# This may be replaced when dependencies are built.
