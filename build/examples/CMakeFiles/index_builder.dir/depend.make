# Empty dependencies file for index_builder.
# This may be replaced when dependencies are built.
