file(REMOVE_RECURSE
  "CMakeFiles/index_builder.dir/index_builder.cpp.o"
  "CMakeFiles/index_builder.dir/index_builder.cpp.o.d"
  "index_builder"
  "index_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
