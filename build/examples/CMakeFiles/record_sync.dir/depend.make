# Empty dependencies file for record_sync.
# This may be replaced when dependencies are built.
