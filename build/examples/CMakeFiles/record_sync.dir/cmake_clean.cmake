file(REMOVE_RECURSE
  "CMakeFiles/record_sync.dir/record_sync.cpp.o"
  "CMakeFiles/record_sync.dir/record_sync.cpp.o.d"
  "record_sync"
  "record_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
