file(REMOVE_RECURSE
  "CMakeFiles/external_store_demo.dir/external_store_demo.cpp.o"
  "CMakeFiles/external_store_demo.dir/external_store_demo.cpp.o.d"
  "external_store_demo"
  "external_store_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_store_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
