# Empty compiler generated dependencies file for external_store_demo.
# This may be replaced when dependencies are built.
