# Empty dependencies file for user_migration.
# This may be replaced when dependencies are built.
