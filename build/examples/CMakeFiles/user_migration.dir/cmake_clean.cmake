file(REMOVE_RECURSE
  "CMakeFiles/user_migration.dir/user_migration.cpp.o"
  "CMakeFiles/user_migration.dir/user_migration.cpp.o.d"
  "user_migration"
  "user_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
